"""Layer tests: Linear, LayerNorm, Conv1d, GRU — shapes, values, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GRU, Conv1d, Dropout, GRUCell, LayerNorm, Linear, Tensor
from tests.conftest import numerical_gradient


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(rng.normal(size=(3, 4)))).shape == (3, 7)

    def test_broadcasts_over_leading_axes(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(rng.normal(size=(2, 5, 4)))).shape == (2, 5, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, rng, bias=False)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_array_equal(zero_out.data, np.zeros((1, 7)))

    def test_weight_gradient(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        (layer(x) ** 2).mean().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == (3, 2)
        assert layer.bias.grad.shape == (2,)


class TestLayerNorm:
    def test_identity_statistics(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(3.0, 2.0, size=(5, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)

    def test_gradient_flows_to_scale_and_shift(self, rng):
        layer = LayerNorm(4)
        (layer(Tensor(rng.normal(size=(3, 4)))) ** 2).mean().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestDropout:
    def test_eval_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        assert layer(x) is x


class TestConv1d:
    def test_same_padding_preserves_length(self, rng):
        conv = Conv1d(3, 5, kernel_size=5, rng=rng, padding="same")
        out = conv(Tensor(rng.normal(size=(2, 11, 3))))
        assert out.shape == (2, 11, 5)

    def test_even_kernel_same_padding(self, rng):
        conv = Conv1d(2, 2, kernel_size=4, rng=rng, padding="same")
        assert conv(Tensor(rng.normal(size=(1, 9, 2)))).shape == (1, 9, 2)

    def test_matches_manual_convolution(self, rng):
        conv = Conv1d(1, 1, kernel_size=3, rng=rng, padding=0)
        x = rng.normal(size=(1, 6, 1))
        out = conv(Tensor(x)).data[0, :, 0]
        kernel = conv.weight.data[:, 0]  # taps for (t-?), ordered k=0..2
        expected = [
            x[0, t, 0] * kernel[0] + x[0, t + 1, 0] * kernel[1] + x[0, t + 2, 0] * kernel[2]
            + conv.bias.data[0]
            for t in range(4)
        ]
        np.testing.assert_allclose(out, expected)

    def test_stride(self, rng):
        conv = Conv1d(2, 3, kernel_size=3, rng=rng, stride=2, padding=0)
        assert conv(Tensor(rng.normal(size=(1, 11, 2)))).shape == (1, 5, 3)

    def test_same_padding_with_stride_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv1d(1, 1, 3, rng, stride=2, padding="same")

    def test_wrong_channel_count_raises(self, rng):
        conv = Conv1d(3, 4, 3, rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 5, 2))))

    def test_gradient_matches_numerical(self, rng):
        conv = Conv1d(2, 2, kernel_size=3, rng=rng, padding="same")
        x0 = rng.normal(size=(1, 6, 2))

        def fn(arr):
            return float((conv(Tensor(arr)) ** 2).sum().data)

        x = Tensor(x0.copy(), requires_grad=True)
        (conv(x) ** 2).sum().backward()
        numeric = numerical_gradient(fn, x0)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)


class TestGRU:
    def test_cell_shape(self, rng):
        cell = GRUCell(3, 5, rng)
        h = cell(Tensor(rng.normal(size=(2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)

    def test_sequence_shape(self, rng):
        gru = GRU(3, 5, rng)
        out = gru(Tensor(rng.normal(size=(2, 7, 3))))
        assert out.shape == (2, 7, 5)

    def test_zero_input_zero_state_stays_bounded(self, rng):
        gru = GRU(3, 5, rng)
        out = gru(Tensor(np.zeros((1, 10, 3))))
        assert np.all(np.abs(out.data) <= 1.0)  # tanh-bounded candidates

    def test_initial_state_used(self, rng):
        gru = GRU(3, 4, rng)
        x = Tensor(rng.normal(size=(1, 3, 3)))
        out_zero = gru(x).data
        out_custom = gru(x, h0=Tensor(np.ones((1, 4)))).data
        assert not np.allclose(out_zero, out_custom)

    def test_gradient_flows_through_time(self, rng):
        gru = GRU(2, 3, rng)
        x = Tensor(rng.normal(size=(1, 5, 2)), requires_grad=True)
        (gru(x)[:, -1, :] ** 2).sum().backward()
        # The last output depends on the first input through recurrence.
        assert np.abs(x.grad[0, 0]).sum() > 0
