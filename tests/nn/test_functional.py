"""Tests for the stateless ops: activations, normalisation, divergences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor
from repro.nn import functional as F
from tests.conftest import numerical_gradient


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_gelu_limits(self):
        # GELU(x) ~ x for large positive x, ~0 for large negative x.
        out = F.gelu(Tensor([-10.0, 0.0, 10.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 10.0], atol=1e-3)

    def test_gelu_gradient(self, rng):
        x0 = rng.normal(size=(5,))
        x = Tensor(x0.copy(), requires_grad=True)
        F.gelu(x).sum().backward()
        numeric = numerical_gradient(lambda a: float(F.gelu(Tensor(a)).data.sum()), x0)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_sigmoid_tanh_range(self, rng):
        x = Tensor(rng.normal(size=(100,)) * 5.0)
        assert np.all((F.sigmoid(x).data > 0) & (F.sigmoid(x).data < 1))
        assert np.all((F.tanh(x).data > -1) & (F.tanh(x).data < 1))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4,)))
        assert F.dropout(x, p=0.0, training=True) is x

    def test_training_mode_scales(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, p=0.5, training=True, rng=rng)
        kept = out.data != 0
        # Inverted dropout rescales survivors by 1/(1-p).
        np.testing.assert_allclose(out.data[kept], 2.0)
        assert 0.35 < kept.mean() < 0.65

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), p=1.5, training=True)

    def test_seeded_rng_reproducible(self):
        x = Tensor(np.ones(100))
        a = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(7)).data
        b = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(7)).data
        np.testing.assert_array_equal(a, b)

    def test_dropout_gradient_masks_match(self):
        x = Tensor(np.ones(50), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(3))
        out.sum().backward()
        # Gradient is 1/(1-p) where kept, 0 where dropped.
        kept = out.data != 0
        np.testing.assert_allclose(x.grad[kept], 2.0)
        np.testing.assert_allclose(x.grad[~kept], 0.0)


class TestLayerNorm:
    def test_normalises_trailing_axis(self, rng):
        x = Tensor(rng.normal(2.0, 5.0, size=(4, 8)))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_params_apply(self, rng):
        x = Tensor(rng.normal(size=(4, 8)))
        out = F.layer_norm(x, Tensor(np.full(8, 2.0)), Tensor(np.full(8, 3.0)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 3.0, atol=1e-10)


class TestLosses:
    def test_mse_zero_for_identical(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == 0.0

    def test_mse_known_value(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mae_known_value(self):
        loss = F.mae_loss(Tensor([1.0, -2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_bce_perfect_prediction_near_zero(self):
        loss = F.binary_cross_entropy(Tensor([1.0, 0.0]), Tensor([1.0, 0.0]))
        assert loss.item() < 1e-5

    def test_bce_clips_extremes(self):
        # Probabilities exactly 0/1 with opposite targets must stay finite.
        loss = F.binary_cross_entropy(Tensor([0.0, 1.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestKLDivergence:
    def test_zero_for_identical_logits(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert F.kl_divergence(x, Tensor(x.data.copy())).item() == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self, rng):
        p = Tensor(rng.normal(size=(10, 5)))
        q = Tensor(rng.normal(size=(10, 5)))
        per_position = F.kl_divergence(p, q, reduce=False)
        assert np.all(per_position.data >= -1e-12)

    def test_asymmetric(self, rng):
        p = Tensor(rng.normal(size=(2, 5)))
        q = Tensor(rng.normal(size=(2, 5)))
        assert F.kl_divergence(p, q).item() != pytest.approx(F.kl_divergence(q, p).item())

    def test_symmetric_kl_is_symmetric(self, rng):
        p = Tensor(rng.normal(size=(2, 5)))
        q = Tensor(rng.normal(size=(2, 5)))
        assert F.symmetric_kl(p, q).item() == pytest.approx(F.symmetric_kl(q, p).item())

    def test_reduce_false_shape(self, rng):
        p = Tensor(rng.normal(size=(2, 7, 5)))
        q = Tensor(rng.normal(size=(2, 7, 5)))
        assert F.symmetric_kl(p, q, reduce=False).shape == (2, 7)

    def test_gradient_matches_numerical(self, rng):
        q = Tensor(rng.normal(size=(3, 4)))
        x0 = rng.normal(size=(3, 4))
        x = Tensor(x0.copy(), requires_grad=True)
        F.symmetric_kl(x, q).backward()
        numeric = numerical_gradient(
            lambda a: float(F.symmetric_kl(Tensor(a), q).data), x0
        )
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 6)),
               elements=st.floats(-5, 5)),
        arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 6)),
               elements=st.floats(-5, 5)),
    )
    @settings(max_examples=30, deadline=None)
    def test_kl_nonnegativity_property(self, a, b):
        if a.shape != b.shape:
            return
        value = F.kl_divergence(Tensor(a), Tensor(b)).item()
        assert value >= -1e-10

    def test_extreme_logits_stay_finite(self):
        """The max-shift inside (log_)softmax keeps huge logits from
        overflowing; the KL of extreme distributions must be finite."""
        huge = Tensor(np.array([[1e6, -1e6, 0.0]]))
        tiny = Tensor(np.array([[-1e6, 1e6, 0.0]]))
        value = F.symmetric_kl(huge, tiny).item()
        assert np.isfinite(value)
        assert value > 0

    def test_extreme_logits_gradients_finite(self):
        x = Tensor(np.array([[500.0, -500.0, 0.0]]), requires_grad=True)
        other = Tensor(np.array([[0.0, 0.0, 0.0]]))
        F.symmetric_kl(x, other).backward()
        assert np.all(np.isfinite(x.grad))
