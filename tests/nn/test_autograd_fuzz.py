"""Property-based fuzzing of the autograd engine.

Builds random expression graphs from a pool of differentiable operations
and checks the backpropagated gradient of a scalar output against central
finite differences.  This complements the per-op tests: composition bugs
(wrong accumulation, stale graph edges, broadcasting in deep chains) only
appear in random DAGs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from tests.conftest import numerical_gradient

# Unary ops kept smooth and bounded so finite differences are accurate.
_UNARY = [
    lambda x: x.tanh(),
    lambda x: x.sigmoid(),
    lambda x: (x * 0.5).exp(),
    lambda x: (x * x + 1.0).log(),
    lambda x: (x * x + 0.5).sqrt(),
    lambda x: x.softmax(axis=-1),
    lambda x: x * 2.0 - 1.0,
    lambda x: x.reshape(*reversed(x.shape)) if x.ndim == 2 else x,
    lambda x: x.T if x.ndim == 2 else x,
]

_BINARY = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a * b,
    lambda a, b: a / (b * b + 1.0),
]


def _build_graph(x: Tensor, program: list[tuple[str, int]]) -> Tensor:
    """Interpret a small program as a DAG rooted at ``x``.

    Each step applies either a unary op to the latest node or a binary op
    combining the latest node with an earlier one — so the input is used
    through many paths and gradient accumulation is exercised.
    """
    nodes = [x]
    for kind, index in program:
        latest = nodes[-1]
        if kind == "unary":
            nodes.append(_UNARY[index % len(_UNARY)](latest))
        else:
            other = nodes[index % len(nodes)]
            if other.shape != latest.shape:
                other = nodes[0] if nodes[0].shape == latest.shape else latest
            nodes.append(_BINARY[index % len(_BINARY)](latest, other))
    return nodes[-1]


@given(
    seed=st.integers(0, 10_000),
    rows=st.integers(2, 4),
    cols=st.integers(2, 4),
    program=st.lists(
        st.tuples(st.sampled_from(["unary", "binary"]), st.integers(0, 30)),
        min_size=2, max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_random_graph_gradients(seed, rows, cols, program):
    x0 = np.random.default_rng(seed).uniform(-1.5, 1.5, size=(rows, cols))

    def forward(arr: np.ndarray) -> Tensor:
        return _build_graph(Tensor(arr), program)

    x = Tensor(x0.copy(), requires_grad=True)
    output = _build_graph(x, program)
    # Repeated self-multiplication can push values to 1e10 and beyond,
    # where central differences with eps=1e-6 lose every significant
    # digit; restrict the property to graphs finite differences can check.
    assume(np.all(np.isfinite(output.data)))
    assume(float(np.max(np.abs(output.data))) < 1e2)
    (output * output).mean().backward()
    assert x.grad is not None

    numeric = numerical_gradient(
        lambda arr: float((forward(arr) * forward(arr)).mean().data), x0, eps=1e-6
    )
    np.testing.assert_allclose(x.grad, numeric, atol=2e-4, rtol=2e-4)


@given(seed=st.integers(0, 1000), depth=st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_deep_chain_gradients(seed, depth):
    """Long unary chains keep gradients correct (no graph truncation)."""
    x0 = np.random.default_rng(seed).uniform(-1.0, 1.0, size=(3,))

    def forward(arr):
        node = Tensor(arr) if not isinstance(arr, Tensor) else arr
        for i in range(depth):
            node = _UNARY[i % 5](node)
        return node.sum()

    x = Tensor(x0.copy(), requires_grad=True)
    forward(x).backward()
    numeric = numerical_gradient(lambda arr: float(forward(arr).data), x0, eps=1e-6)
    np.testing.assert_allclose(x.grad, numeric, atol=1e-4)
