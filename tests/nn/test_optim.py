"""Optimiser tests: convergence, bias correction, clipping, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD, Tensor


def _quadratic_loss(param: Parameter, target: np.ndarray):
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            loss = _quadratic_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([5.0])
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for param, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                loss = _quadratic_loss(param, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert abs(momentum.data[0] - 5.0) < abs(plain.data[0] - 5.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_no_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([3.0, -2.0, 0.5])
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            loss = _quadratic_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the very first Adam update is ~lr in the
        # gradient direction regardless of gradient magnitude.
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.5)
        loss = _quadratic_loss(param, np.array([100.0]))
        loss.backward()
        opt.step()
        assert param.data[0] == pytest.approx(0.5, rel=1e-6)

    def test_skips_parameters_without_grad(self):
        used = Parameter(np.zeros(1))
        unused = Parameter(np.ones(1))
        opt = Adam([used, unused], lr=0.1)
        loss = _quadratic_loss(used, np.array([1.0]))
        loss.backward()
        opt.step()
        np.testing.assert_array_equal(unused.data, [1.0])

    def test_grad_clip_limits_update(self):
        clipped = Parameter(np.array([0.0]))
        free = Parameter(np.array([0.0]))
        opt_c = Adam([clipped], lr=0.1, grad_clip=1e-6)
        opt_f = Adam([free], lr=0.1)
        for param, opt in ((clipped, opt_c), (free, opt_f)):
            loss = _quadratic_loss(param, np.array([1000.0]))
            loss.backward()
            opt.step()
        # Both move by ~lr on step one (Adam normalisation), but the
        # clipped gradient is tiny so its second-moment estimate differs;
        # run one more step to surface the difference.
        assert np.isfinite(clipped.data[0])

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.01, weight_decay=10.0)
        for _ in range(100):
            loss = (param * Tensor(np.zeros(1))).sum() + param.sum() * 0.0
            # Pure decay: gradient of zero-valued loss is 0, decay drives to 0.
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(param.data[0]) < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)
