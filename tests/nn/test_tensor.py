"""Autograd engine tests: op semantics, gradients, graph mechanics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, no_grad, is_grad_enabled
from tests.conftest import numerical_gradient


def _check_grad(fn, x0, tol=1e-5):
    """Compare autograd gradient against central differences."""
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    numeric = numerical_gradient(lambda arr: float(fn(Tensor(arr)).data.sum()), x0)
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, numeric, atol=tol, rtol=tol)


class TestBasicOps:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar_coercion(self):
        out = 1.0 + Tensor([1.0]) + 2.0
        np.testing.assert_array_equal(out.data, [4.0])

    def test_sub_and_neg(self):
        out = Tensor([3.0]) - 1.0
        np.testing.assert_array_equal(out.data, [2.0])
        np.testing.assert_array_equal((-Tensor([3.0])).data, [-3.0])

    def test_rsub(self):
        np.testing.assert_array_equal((1.0 - Tensor([3.0])).data, [-2.0])

    def test_mul_div(self):
        np.testing.assert_array_equal((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_array_equal((Tensor([6.0]) / 3.0).data, [2.0])
        np.testing.assert_array_equal((6.0 / Tensor([3.0])).data, [2.0])

    def test_pow(self):
        np.testing.assert_array_equal((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2) * 2.0)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal((a @ b).data, [[2.0, 4.0], [6.0, 8.0]])

    def test_matmul_mixed_ndim_rejected(self):
        with pytest.raises(NotImplementedError):
            Tensor(np.ones((2, 2))) @ Tensor(np.ones(2))

    def test_dot_product(self):
        out = Tensor([1.0, 2.0]) @ Tensor([3.0, 4.0])
        assert out.item() == 11.0


class TestGradients:
    def test_add_grad(self, rng):
        _check_grad(lambda x: (x + x * 2.0).sum(), rng.normal(size=(3, 4)))

    def test_mul_grad(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        _check_grad(lambda x: (x * other).sum(), rng.normal(size=(3, 4)))

    def test_div_grad(self, rng):
        other = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)))
        _check_grad(lambda x: (x / other).sum(), rng.normal(size=(3, 4)))

    def test_div_grad_wrt_denominator(self, rng):
        numer = Tensor(rng.normal(size=(3,)))
        _check_grad(lambda x: (numer / x).sum(), rng.uniform(1.0, 2.0, size=(3,)))

    def test_matmul_grad(self, rng):
        w = Tensor(rng.normal(size=(4, 5)))
        _check_grad(lambda x: (x @ w).sum(), rng.normal(size=(3, 4)))

    def test_batched_matmul_grad(self, rng):
        w = Tensor(rng.normal(size=(2, 4, 5)))
        _check_grad(lambda x: (x @ w).sum(), rng.normal(size=(2, 3, 4)))

    def test_matmul_broadcast_grad(self, rng):
        # (B, T, D) @ (D, E): gradient to the 2-D weight must sum batches.
        x = Tensor(rng.normal(size=(2, 3, 4)))
        _check_grad(lambda w: (x @ w).sum(), rng.normal(size=(4, 5)))

    def test_exp_log_sqrt_grads(self, rng):
        x0 = rng.uniform(0.5, 2.0, size=(4,))
        _check_grad(lambda x: x.exp().sum(), x0)
        _check_grad(lambda x: x.log().sum(), x0)
        _check_grad(lambda x: x.sqrt().sum(), x0)

    def test_tanh_sigmoid_relu_grads(self, rng):
        x0 = rng.normal(size=(6,))
        _check_grad(lambda x: x.tanh().sum(), x0)
        _check_grad(lambda x: x.sigmoid().sum(), x0)
        # keep points away from the ReLU kink
        x0_safe = x0 + np.sign(x0) * 0.1
        _check_grad(lambda x: x.relu().sum(), x0_safe)

    def test_abs_clip_grads(self, rng):
        x0 = rng.normal(size=(6,)) + np.sign(rng.normal(size=(6,))) * 0.5
        _check_grad(lambda x: x.abs().sum(), x0)
        _check_grad(lambda x: x.clip(-0.4, 0.4).sum(), x0)

    def test_sum_axis_grad(self, rng):
        _check_grad(lambda x: (x.sum(axis=1) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims_grad(self, rng):
        _check_grad(lambda x: (x.sum(axis=0, keepdims=True) * x).sum(), rng.normal(size=(3, 4)))

    def test_mean_var_grads(self, rng):
        x0 = rng.normal(size=(3, 4))
        _check_grad(lambda x: x.mean(axis=1).sum(), x0)
        _check_grad(lambda x: x.var(axis=1).sum(), x0)

    def test_max_grad(self, rng):
        x0 = rng.normal(size=(3, 4))
        _check_grad(lambda x: x.max(axis=1).sum(), x0)

    def test_softmax_grad(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        _check_grad(lambda x: (x.softmax(axis=-1) * weights).sum(), rng.normal(size=(3, 4)))

    def test_log_softmax_grad(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        _check_grad(lambda x: (x.log_softmax(axis=-1) * weights).sum(), rng.normal(size=(3, 4)))

    def test_getitem_grad(self, rng):
        _check_grad(lambda x: (x[1:, ::2] ** 2).sum(), rng.normal(size=(3, 4)))

    def test_fancy_index_grad(self, rng):
        rows = np.array([[0], [1]])
        cols = np.array([[0, 2], [1, 3]])
        _check_grad(lambda x: (x[rows, cols] ** 2).sum(), rng.normal(size=(2, 4)))

    def test_transpose_reshape_grads(self, rng):
        x0 = rng.normal(size=(2, 3, 4))
        w = Tensor(rng.normal(size=(4, 3)))
        _check_grad(lambda x: (x.transpose(0, 2, 1).reshape(2, 12)).sum(), x0)
        _check_grad(lambda x: (x.swapaxes(1, 2) * 2.0).sum(), x0)

    def test_concat_grad(self, rng):
        a0 = rng.normal(size=(2, 3))
        b = Tensor(rng.normal(size=(2, 2)))
        _check_grad(lambda x: (Tensor.concat([x, b], axis=1) ** 2).sum(), a0)

    def test_stack_grad(self, rng):
        a0 = rng.normal(size=(2, 3))
        b = Tensor(rng.normal(size=(2, 3)))
        _check_grad(lambda x: (Tensor.stack([x, b], axis=0) ** 2).sum(), a0)

    def test_where_grad(self, rng):
        cond = rng.random((3, 4)) > 0.5
        b = Tensor(rng.normal(size=(3, 4)))
        _check_grad(lambda x: (Tensor.where(cond, x, b) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_scatter_grad(self, rng):
        rows = np.arange(2)[:, None]
        idx = np.array([[0, 3], [1, 2]])
        _check_grad(
            lambda x: (Tensor.scatter(x, (rows, idx), (2, 5, 3)) ** 2).sum(),
            rng.normal(size=(2, 2, 3)),
        )


class TestGraphMechanics:
    def test_grad_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # dy/dx = 2x via two paths
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_explicit_gradient_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0).backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_detach_blocks_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        (x.detach() * x).backward()
        np.testing.assert_allclose(x.grad, [2.0])  # only the non-detached path

    def test_requires_grad_pinned_at_record_time(self):
        """An edge recorded while a tensor was frozen must not deliver
        gradient even if the tensor is unfrozen before backward — and
        vice versa (the GAN baselines' phase mechanics rely on this)."""
        w = Tensor([2.0], requires_grad=True)
        x = Tensor([3.0], requires_grad=True)

        w.requires_grad = False
        frozen_product = w * x      # edge recorded with w frozen
        w.requires_grad = True
        live_product = w * x        # edge recorded with w live
        w.requires_grad = False     # freeze again before backward
        (frozen_product + live_product).backward()

        # Only the live edge contributes: dw = x = 3 (once, not twice).
        np.testing.assert_allclose(w.grad, [3.0])
        np.testing.assert_allclose(x.grad, [4.0])  # both edges reach x
        assert w.requires_grad is False  # flags restored after backward

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            y = x * 2.0
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """Concurrent inference threads (the serve worker pool) must not
        disturb graph construction in other threads: interleaved global
        save/restore used to leave gradients disabled process-wide."""
        import threading

        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def scorer():
            with no_grad():
                entered.set()
                release.wait(timeout=10)
                observed["inside_worker"] = is_grad_enabled()

        worker = threading.Thread(target=scorer)
        worker.start()
        entered.wait(timeout=10)
        # Training thread: unaffected by the worker's no_grad().
        assert is_grad_enabled()
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        assert y.requires_grad
        release.set()
        worker.join(timeout=10)
        assert observed["inside_worker"] is False
        assert is_grad_enabled()

    def test_deep_graph_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1e-4
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_properties(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.shape == (2, 3)
        assert x.ndim == 2
        assert x.size == 6
        assert len(x) == 2
        assert "Tensor" in repr(x)


class TestBroadcasting:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-10, 10)),
    )
    @settings(max_examples=50, deadline=None)
    def test_scalar_broadcast_add_grad_shape(self, data):
        x = Tensor(data, requires_grad=True)
        bias = Tensor(np.array(1.5), requires_grad=True)
        (x + bias).sum().backward()
        assert x.grad.shape == x.shape
        assert bias.grad.shape == bias.shape
        np.testing.assert_allclose(bias.grad, data.size)

    def test_row_broadcast(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        row = Tensor(rng.normal(size=(3,)), requires_grad=True)
        ((x * row).sum()).backward()
        np.testing.assert_allclose(row.grad, x.data.sum(axis=0))

    def test_middle_axis_broadcast(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 3)), requires_grad=True)
        y = Tensor(rng.normal(size=(2, 4, 3)))
        (x * y).sum().backward()
        assert x.grad.shape == (2, 1, 3)
        np.testing.assert_allclose(x.grad, y.data.sum(axis=1, keepdims=True))


class TestHypothesisGradients:
    """Property-based gradient checks on random shapes/values."""

    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=2, max_side=5),
               elements=st.floats(-3, 3)),
    )
    @settings(max_examples=30, deadline=None)
    def test_tanh_chain_gradient(self, data):
        def fn(x):
            return (x.tanh() * 2.0 + 1.0).sum()

        x = Tensor(data.copy(), requires_grad=True)
        fn(x).backward()
        numeric = numerical_gradient(lambda a: float(fn(Tensor(a)).data), data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 5)),
               elements=st.floats(-3, 3)),
    )
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_sum_to_one(self, data):
        out = Tensor(data).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)
