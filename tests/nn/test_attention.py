"""Multi-head self-attention tests (paper Eq. 12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, Tensor


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        assert attn(Tensor(rng.normal(size=(3, 5, 8)))).shape == (3, 5, 8)

    def test_dim_must_divide_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng)

    def test_attention_weights_rows_sum_to_one(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        attn(Tensor(rng.normal(size=(2, 6, 8))))
        weights = attn.last_attention
        assert weights.shape == (2, 2, 6, 6)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-12)

    def test_attention_graph_flag(self, rng):
        plain = MultiHeadSelfAttention(8, 2, rng)
        plain(Tensor(rng.normal(size=(1, 4, 8))))
        assert plain.last_attention_tensor is None

        kept = MultiHeadSelfAttention(8, 2, rng, keep_attention_graph=True)
        kept(Tensor(rng.normal(size=(1, 4, 8))))
        assert kept.last_attention_tensor is not None
        assert kept.last_attention_tensor.shape == (1, 2, 4, 4)

    def test_permutation_equivariance(self, rng):
        # Without positional encoding, self-attention commutes with
        # permutations of the time axis.
        attn = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 5, 8))
        perm = rng.permutation(5)
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm, :])).data
        np.testing.assert_allclose(out[:, perm, :], out_perm, atol=1e-10)

    def test_gradients_reach_all_projections(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        (attn(Tensor(rng.normal(size=(2, 5, 8)))) ** 2).mean().backward()
        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.out_proj):
            assert proj.weight.grad is not None
            assert np.abs(proj.weight.grad).sum() > 0

    def test_attention_dropout_only_in_training(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng, dropout=0.5)
        x = Tensor(rng.normal(size=(1, 6, 8)))
        attn.train()
        stochastic_a = attn(x).data
        stochastic_b = attn(x).data
        assert not np.allclose(stochastic_a, stochastic_b)
        attn.eval()
        deterministic_a = attn(x).data
        deterministic_b = attn(x).data
        np.testing.assert_array_equal(deterministic_a, deterministic_b)

    def test_uniform_attention_for_identical_tokens(self, rng):
        # Identical tokens => identical scores => uniform attention rows.
        attn = MultiHeadSelfAttention(8, 2, rng)
        x = np.tile(rng.normal(size=(1, 1, 8)), (1, 6, 1))
        attn(Tensor(x))
        np.testing.assert_allclose(attn.last_attention, 1.0 / 6.0, atol=1e-12)
