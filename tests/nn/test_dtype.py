"""The compute-dtype policy: global default, scoped override, tensor wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture(autouse=True)
def _restore_default():
    saved = nn.get_default_dtype()
    yield
    nn.set_default_dtype(saved)


class TestPolicy:
    def test_default_is_float64(self):
        assert nn.get_default_dtype() == np.float64
        assert Tensor([1.0]).data.dtype == np.float64

    def test_set_default(self):
        nn.set_default_dtype(np.float32)
        assert nn.get_default_dtype() == np.float32
        assert Tensor([1.0]).data.dtype == np.float32

    def test_set_accepts_strings(self):
        nn.set_default_dtype("float32")
        assert nn.get_default_dtype() == np.float32

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.float16)

    def test_context_manager_scopes_and_nests(self):
        with nn.default_dtype(np.float32):
            assert Tensor([1.0]).data.dtype == np.float32
            with nn.default_dtype(np.float64):
                assert Tensor([1.0]).data.dtype == np.float64
            assert Tensor([1.0]).data.dtype == np.float32
        assert Tensor([1.0]).data.dtype == np.float64

    def test_context_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with nn.default_dtype(np.float32):
                raise RuntimeError("boom")
        assert Tensor([1.0]).data.dtype == np.float64

    def test_explicit_dtype_overrides_policy(self):
        with nn.default_dtype(np.float32):
            assert Tensor([1.0], dtype=np.float64).data.dtype == np.float64

    def test_existing_array_recast_only_when_needed(self):
        array = np.ones(3, dtype=np.float64)
        assert Tensor(array).data is array  # no copy at the default dtype
        with nn.default_dtype(np.float32):
            assert Tensor(array).data.dtype == np.float32


class TestComputeInPolicy:
    def test_ops_stay_in_float32(self):
        with nn.default_dtype(np.float32):
            x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
            out = (x * 2.0 + 1.0).sum()
            assert out.data.dtype == np.float32
            out.backward()
            assert x.grad.dtype == np.float32

    def test_module_to_dtype(self):
        layer = nn.Linear(4, 2, np.random.default_rng(0))
        layer.to_dtype(np.float32)
        assert all(p.data.dtype == np.float32 for p in layer.parameters())
        with nn.default_dtype(np.float32):
            out = layer(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.data.dtype == np.float32
