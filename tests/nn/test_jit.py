"""Tape-replay JIT: bitwise equivalence, guards, cache keys, fallback.

The contract of :mod:`repro.nn.jit` is strict: replay output must be
*bitwise* identical to the interpreted graph — every kernel emitter
mirrors the exact numpy call sequence of its op, so these tests use
``np.array_equal``, never ``allclose``.  Coverage spans the same five
model variants ``repro analyze --all`` checks (default, float32,
temporal-only, frequency-only, non-adversarial) at both compute dtypes
and both fused-policy states.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import TFMAE, TFMAEConfig
from repro.core.model import _UNSUPPORTED
from repro.nn import fused, jit


def _sine_series(rng, length, features=1):
    t = np.arange(length, dtype=np.float64)
    base = np.sin(2 * np.pi * t / 23.0)[:, None]
    return np.repeat(base, features, axis=1) + 0.05 * rng.normal(
        size=(length, features)
    )


#: Structural variants of the scoring graph; together with the dtype
#: axis these cover all five `analyze --all` model variants (the cli's
#: "float32" variant is the default structure at compute_dtype=float32).
VARIANTS = {
    "default": {},
    "temporal-only": {"use_frequency_branch": False},
    "frequency-only": {"use_temporal_branch": False},
    "non-adversarial": {"adversarial": False},
}
DTYPES = ("float64", "float32")

_FITTED: dict = {}


def _fitted(variant: str, dtype: str) -> TFMAE:
    """Fit-once cache across the module (8 tiny models total)."""
    key = (variant, dtype)
    detector = _FITTED.get(key)
    if detector is None:
        config = TFMAEConfig(
            window_size=30,
            d_model=8,
            num_layers=1,
            num_heads=2,
            temporal_mask_ratio=30.0,
            frequency_mask_ratio=30.0,
            anomaly_ratio=5.0,
            batch_size=8,
            epochs=1,
            learning_rate=1e-3,
            seed=0,
            compute_dtype=dtype,
            **VARIANTS[variant],
        )
        detector = TFMAE(config)
        detector.fit(_sine_series(np.random.default_rng(0), 150))
        _FITTED[key] = detector
    return detector


def _windows(detector: TFMAE, batch: int = 3) -> np.ndarray:
    rng = np.random.default_rng(7)
    size = detector.config.window_size
    return np.stack([_sine_series(rng, size) for _ in range(batch)])


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    @pytest.mark.parametrize("use_fused", [True, False])
    def test_replay_matches_interpreted(self, variant, dtype, use_fused):
        detector = _fitted(variant, dtype)
        windows = _windows(detector)
        with fused.use_fused(use_fused):
            with jit.use_jit(False):
                interpreted = detector.model.score_windows(windows)
            with jit.use_jit(True):
                traced = detector.model.score_windows(windows)  # trace call
                replay_1 = detector.model.score_windows(windows)
                replay_2 = detector.model.score_windows(windows)
        assert np.array_equal(interpreted, traced)
        assert np.array_equal(interpreted, replay_1)
        assert np.array_equal(interpreted, replay_2)
        assert interpreted.dtype == np.float64  # score contract

    def test_score_and_score_last_ride_the_tape(self):
        detector = _fitted("default", "float64")
        rng = np.random.default_rng(11)
        series = _sine_series(rng, 90)
        windows = _windows(detector, batch=2)
        with jit.use_jit(False):
            series_interp = detector.score(series)
            last_interp = detector.score_last(windows)
        with jit.use_jit(True):
            assert np.array_equal(series_interp, detector.score(series))
            assert np.array_equal(last_interp, detector.score_last(windows))

    def test_replay_output_is_owned(self):
        """Scores must not alias the tape's reusable frame buffers."""
        detector = _fitted("default", "float64")
        windows = _windows(detector)
        with jit.use_jit(True):
            detector.model.score_windows(windows)
            first = detector.model.score_windows(windows)
            snapshot = first.copy()
            detector.model.score_windows(windows * 2.0)
        assert np.array_equal(first, snapshot)


class TestGuards:
    def test_load_state_dict_invalidates_tapes(self):
        detector = _fitted("default", "float64")
        model = detector.model
        windows = _windows(detector)
        with jit.use_jit(True):
            model.score_windows(windows)
            assert model._tapes  # tape cached
            tape = next(iter(model._tapes.values()))
            assert tape.guards_ok()

            # Rebind every parameter array (what load_model / publish do).
            state = model.state_dict()
            for name in state:
                state[name] = state[name] * 1.5
            model.load_state_dict(state)
            assert not tape.guards_ok()

            with jit.use_jit(False):
                interpreted = model.score_windows(windows)
            replayed = model.score_windows(windows)  # retraces, not stale
        assert np.array_equal(interpreted, replayed)

    def test_checkpoint_roundtrip_stays_bitwise(self, tmp_path):
        from repro.nn.serialization import load_model, save_model

        detector = _fitted("default", "float64")
        model = detector.model
        windows = _windows(detector)
        with jit.use_jit(True):
            before = model.score_windows(windows)
            save_model(model, tmp_path / "ckpt.npz")
            load_model(model, tmp_path / "ckpt.npz")
            after = model.score_windows(windows)  # guards tripped, retraced
        assert np.array_equal(before, after)

    def test_inplace_update_keeps_tape_valid(self):
        """Optimizer-style in-place writes keep array identity: no retrace,
        and replay reads the new values."""
        detector = _fitted("default", "float64")
        model = detector.model
        windows = _windows(detector)
        with jit.use_jit(True):
            model.score_windows(windows)
            tape = next(iter(model._tapes.values()))
            param = next(iter(model.parameters()))
            param.data *= 1.01  # repro: noqa[MUT001] - optimizer-style step
            assert tape.guards_ok()
            with jit.use_jit(False):
                interpreted = model.score_windows(windows)
            assert np.array_equal(interpreted, model.score_windows(windows))


class TestTapeCache:
    def test_keys_specialize_shape_dtype_fused(self):
        detector = _fitted("default", "float64")
        model = detector.model
        model._tapes.clear()
        with jit.use_jit(True):
            model.score_windows(_windows(detector, batch=2))
            assert len(model._tapes) == 1
            model.score_windows(_windows(detector, batch=2))
            assert len(model._tapes) == 1  # same key, cache hit
            model.score_windows(_windows(detector, batch=5))
            assert len(model._tapes) == 2  # new batch shape
            with fused.use_fused(False):
                model.score_windows(_windows(detector, batch=2))
            assert len(model._tapes) == 3  # fused policy in the key
        keys = set(model._tapes)
        assert {key[0][0] for key in keys} == {2, 5}
        assert {key[2] for key in keys} == {True, False}


class TestFallback:
    def test_unsupported_op_falls_back_and_negative_caches(self, monkeypatch):
        detector = _fitted("default", "float64")
        model = detector.model
        model._tapes.clear()
        windows = _windows(detector)
        with jit.use_jit(False):
            interpreted = model.score_windows(windows)

        monkeypatch.delitem(jit._COMPILERS, "matmul")
        with jit.use_jit(True):
            first = model.score_windows(windows)
            assert list(model._tapes.values()) == [_UNSUPPORTED]
            second = model.score_windows(windows)  # negative-cache path
        assert np.array_equal(interpreted, first)
        assert np.array_equal(interpreted, second)

        monkeypatch.undo()
        model._tapes.clear()
        with jit.use_jit(True):
            third = model.score_windows(windows)
            assert all(t is not _UNSUPPORTED for t in model._tapes.values())
        assert np.array_equal(interpreted, third)


class TestJitThreadLocal:
    """Mirror of tests/nn/test_policy_threading.py for the jit switch."""

    def _run_both(self, worker_a, worker_b):
        errors = []

        def wrap(fn):
            def run():
                try:
                    fn()
                except BaseException as error:  # pragma: no cover
                    errors.append(error)
            return run

        threads = [threading.Thread(target=wrap(worker_a)),
                   threading.Thread(target=wrap(worker_b))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def test_concurrent_flips_do_not_leak(self):
        barrier = threading.Barrier(2)
        iterations = 200

        def flip_off():
            barrier.wait()
            for _ in range(iterations):
                with jit.use_jit(False):
                    assert jit.jit_enabled() is False

        def flip_on():
            barrier.wait()
            for _ in range(iterations):
                with jit.use_jit(True):
                    assert jit.jit_enabled() is True

        self._run_both(flip_off, flip_on)
        assert jit.jit_enabled() is True  # process default untouched

    def test_override_invisible_to_other_thread(self):
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def overrider():
            with jit.use_jit(False):
                entered.set()
                release.wait(timeout=5)

        def observer():
            entered.wait(timeout=5)
            seen["enabled"] = jit.jit_enabled()
            release.set()

        self._run_both(overrider, observer)
        assert seen["enabled"] is True

    def test_set_jit_is_the_shared_default(self):
        seen = {}
        try:
            jit.set_jit(False)
            thread = threading.Thread(
                target=lambda: seen.update(enabled=jit.jit_enabled())
            )
            thread.start()
            thread.join()
        finally:
            jit.set_jit(True)
        assert seen["enabled"] is False

    def test_nested_overrides_restore(self):
        with jit.use_jit(False):
            with jit.use_jit(True):
                assert jit.jit_enabled() is True
            assert jit.jit_enabled() is False
        assert jit.jit_enabled() is True

    def test_concurrent_replay_same_tape(self):
        """Two threads replaying one tape share code but not frames."""
        detector = _fitted("default", "float64")
        model = detector.model
        windows = _windows(detector)
        with jit.use_jit(True):
            expected = model.score_windows(windows)
        results = {}

        def worker(name):
            with jit.use_jit(True):
                for _ in range(20):
                    results[name] = model.score_windows(windows)

        self._run_both(lambda: worker("a"), lambda: worker("b"))
        assert np.array_equal(results["a"], expected)
        assert np.array_equal(results["b"], expected)
