"""Thread-locality of the fused and dtype policy switches.

The serve scheduler's worker pool and the trainer can run on different
threads of one process; a thread flipping a policy inside ``use_fused``/
``default_dtype`` must never be observed by any other thread, while
``set_fused``/``set_default_dtype`` remain the shared process defaults.
The two-thread concurrent-flip tests are the regression for the bug
where ``set_fused`` was the only switch and a test flipping to the
reference path could drag a concurrent worker with it.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import nn
from repro.nn import Tensor, fused


def _run_both(worker_a, worker_b):
    """Run two workers concurrently; re-raise the first failure."""
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)
        return run

    threads = [threading.Thread(target=wrap(worker_a)),
               threading.Thread(target=wrap(worker_b))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestFusedThreadLocal:
    def test_concurrent_flips_do_not_leak(self):
        barrier = threading.Barrier(2)
        iterations = 200

        def flip_off():
            barrier.wait()
            for _ in range(iterations):
                with fused.use_fused(False):
                    assert fused.fused_enabled() is False

        def flip_on():
            barrier.wait()
            for _ in range(iterations):
                with fused.use_fused(True):
                    assert fused.fused_enabled() is True

        _run_both(flip_off, flip_on)
        assert fused.fused_enabled() is True  # process default untouched

    def test_override_invisible_to_other_thread(self):
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def overrider():
            with fused.use_fused(False):
                entered.set()
                release.wait(timeout=5)

        def observer():
            entered.wait(timeout=5)
            seen["enabled"] = fused.fused_enabled()
            release.set()

        _run_both(overrider, observer)
        assert seen["enabled"] is True

    def test_set_fused_is_the_shared_default(self):
        seen = {}
        try:
            fused.set_fused(False)
            thread = threading.Thread(
                target=lambda: seen.update(enabled=fused.fused_enabled())
            )
            thread.start()
            thread.join()
        finally:
            fused.set_fused(True)
        assert seen["enabled"] is False

    def test_thread_local_wins_over_process_default(self):
        try:
            fused.set_fused(False)
            with fused.use_fused(True):
                assert fused.fused_enabled() is True
            assert fused.fused_enabled() is False
        finally:
            fused.set_fused(True)

    def test_nested_overrides_restore(self):
        with fused.use_fused(False):
            with fused.use_fused(True):
                assert fused.fused_enabled() is True
            assert fused.fused_enabled() is False
        assert fused.fused_enabled() is True


class TestDtypeThreadLocal:
    def test_concurrent_flips_do_not_leak(self):
        barrier = threading.Barrier(2)
        iterations = 200

        def float32_worker():
            barrier.wait()
            for _ in range(iterations):
                with nn.default_dtype(np.float32):
                    assert Tensor([1.0]).data.dtype == np.float32

        def float64_worker():
            barrier.wait()
            for _ in range(iterations):
                with nn.default_dtype(np.float64):
                    assert Tensor([1.0]).data.dtype == np.float64

        _run_both(float32_worker, float64_worker)
        assert Tensor([1.0]).data.dtype == np.float64

    def test_override_invisible_to_other_thread(self):
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def overrider():
            with nn.default_dtype(np.float32):
                entered.set()
                release.wait(timeout=5)

        def observer():
            entered.wait(timeout=5)
            seen["dtype"] = Tensor([1.0]).data.dtype
            release.set()

        _run_both(overrider, observer)
        assert seen["dtype"] == np.float64


class TestMixedPolicyWorkers:
    def test_fused_and_dtype_flip_together(self):
        """A float32/reference-path thread next to a float64/fused thread —
        the serve-scheduler scenario that motivated thread-locality."""
        barrier = threading.Barrier(2)

        def reference_float32():
            barrier.wait()
            for _ in range(50):
                with fused.use_fused(False), nn.default_dtype(np.float32):
                    x = Tensor(np.ones((2, 3)), requires_grad=True)
                    y = x.softmax(axis=-1)
                    assert y.data.dtype == np.float32
                    assert fused.fused_enabled() is False

        def fused_float64():
            barrier.wait()
            for _ in range(50):
                with fused.use_fused(True), nn.default_dtype(np.float64):
                    x = Tensor(np.ones((2, 3)), requires_grad=True)
                    y = x.softmax(axis=-1)
                    assert y.data.dtype == np.float64
                    assert fused.fused_enabled() is True

        _run_both(reference_float32, fused_float64)
