"""The gradcheck harness itself, plus a sweep over every tensor primitive.

:func:`repro.nn.gradcheck` is what certifies the hand-written fused
backwards, so it must (a) accept every correct primitive in the engine
and (b) actually reject a wrong gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import GradcheckError, Tensor, fused, gradcheck


def _t(rng, shape, scale=1.0, shift=0.0):
    return Tensor(rng.normal(size=shape) * scale + shift, requires_grad=True)


class TestHarness:
    def test_accepts_correct_gradient(self, rng):
        assert gradcheck(lambda t: (t * t).sum(), _t(rng, (4,)))

    def test_rejects_wrong_gradient(self, rng):
        """A deliberately broken backward must raise GradcheckError."""

        def bad_square(x: Tensor) -> Tensor:
            def backward(grad):
                x._accumulate(grad * x.data)  # missing the factor of 2

            return Tensor._make(x.data**2, (x,), backward)

        with pytest.raises(GradcheckError):
            gradcheck(lambda t: bad_square(t).sum(), _t(rng, (3,)))

    def test_rejects_float32_inputs(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True, dtype=np.float32)
        with pytest.raises(ValueError, match="float64"):
            gradcheck(lambda t: t.sum(), x)

    def test_requires_a_grad_input(self, rng):
        with pytest.raises(ValueError, match="requires_grad"):
            gradcheck(lambda t: t.sum(), Tensor(rng.normal(size=(3,))))

    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            gradcheck(lambda: Tensor(1.0))

    def test_non_scalar_outputs_projected(self, rng):
        """Matrix-valued outputs exercise the full Jacobian via projection."""
        assert gradcheck(lambda t: t * t, _t(rng, (3, 4)))

    def test_skips_non_grad_inputs(self, rng):
        constant = Tensor(rng.normal(size=(4,)))
        assert gradcheck(lambda a, b: (a * b).sum(), _t(rng, (4,)), constant)


class TestTensorPrimitives:
    """Every autograd primitive validated by finite differences."""

    def test_add_mul_broadcast(self, rng):
        assert gradcheck(lambda a, b: a + b * 2.0, _t(rng, (3, 4)), _t(rng, (4,)))

    def test_sub_neg(self, rng):
        assert gradcheck(lambda a, b: a - b, _t(rng, (2, 3)), _t(rng, (3,)))

    def test_div(self, rng):
        assert gradcheck(
            lambda a, b: a / b, _t(rng, (3,)), _t(rng, (3,), scale=0.2, shift=2.0)
        )

    def test_pow(self, rng):
        assert gradcheck(lambda t: t**3, _t(rng, (4,)))

    def test_exp_log(self, rng):
        assert gradcheck(lambda t: t.exp().log(), _t(rng, (4,)))

    def test_sqrt(self, rng):
        assert gradcheck(lambda t: t.sqrt(), _t(rng, (4,), scale=0.3, shift=2.0))

    def test_tanh_sigmoid(self, rng):
        assert gradcheck(lambda t: t.tanh() + t.sigmoid(), _t(rng, (5,)))

    def test_relu_abs(self, rng):
        # Shift away from the kink at zero, where finite differences lie.
        assert gradcheck(lambda t: t.relu() + t.abs(), _t(rng, (5,), shift=3.0))

    def test_clip(self, rng):
        assert gradcheck(lambda t: t.clip(-0.5, 0.5), _t(rng, (6,), scale=2.0))

    def test_sum_mean_var(self, rng):
        assert gradcheck(
            lambda t: t.sum(axis=0) + t.mean(axis=1) + t.var(axis=1),
            _t(rng, (3, 3)),
        )

    def test_max(self, rng):
        assert gradcheck(lambda t: t.max(axis=-1), _t(rng, (3, 5)))

    def test_matmul(self, rng):
        assert gradcheck(lambda a, b: a @ b, _t(rng, (3, 4)), _t(rng, (4, 2)))

    def test_batched_matmul(self, rng):
        assert gradcheck(
            lambda a, b: a @ b, _t(rng, (2, 3, 4)), _t(rng, (2, 4, 2))
        )

    def test_transpose_reshape(self, rng):
        assert gradcheck(lambda t: t.transpose(1, 0).reshape(6), _t(rng, (2, 3)))

    def test_getitem(self, rng):
        assert gradcheck(lambda t: t[1:, ::2], _t(rng, (3, 4)))

    def test_concat_stack(self, rng):
        assert gradcheck(
            lambda a, b: Tensor.concat([a, b], axis=0) @ Tensor.stack([a, b]).reshape(2, 6),
            _t(rng, (3, 2)),
            _t(rng, (3, 2)),
        )

    def test_scatter(self, rng):
        index = (np.array([0, 2]),)
        assert gradcheck(
            lambda t: Tensor.scatter(t, index, (4, 3)), _t(rng, (2, 3))
        )

    def test_where(self, rng):
        condition = np.array([True, False, True, False])
        assert gradcheck(
            lambda a, b: Tensor.where(condition, a, b),
            _t(rng, (4,)),
            _t(rng, (4,)),
        )

    def test_softmax_composition(self, rng):
        assert gradcheck(lambda t: t.softmax(axis=-1), _t(rng, (3, 4)))

    def test_log_softmax_composition(self, rng):
        assert gradcheck(lambda t: t.log_softmax(axis=-1), _t(rng, (3, 4)))


def _t32(rng, shape, scale=1.0, shift=0.0):
    return Tensor(rng.normal(size=shape) * scale + shift,
                  requires_grad=True, dtype=np.float32)


class TestFusedFloat32:
    """Fused kernels swept under the ``compute_dtype="float32"`` policy.

    The float64 sweep in ``tests/nn/test_fused.py`` certifies the gradient
    *formulas*; this sweep certifies they stay usable when the whole graph
    — forwards, saved intermediates, and the hand-written backwards — runs
    in float32, as it does for a ``compute_dtype="float32"`` model.  The
    coarse ``eps`` rides above float32 rounding noise while the loosened
    tolerances stay tight enough that a wrong formula (any missing factor)
    still fails, which ``test_still_rejects_wrong_gradient`` pins down.
    """

    TOL = {"eps": 1e-2, "atol": 1e-2, "rtol": 1e-2, "allow_float32": True}

    def test_softmax(self, rng):
        with nn.default_dtype(np.float32):
            assert gradcheck(fused.softmax, _t32(rng, (3, 5)), **self.TOL)

    def test_log_softmax(self, rng):
        with nn.default_dtype(np.float32):
            assert gradcheck(fused.log_softmax, _t32(rng, (3, 5)), **self.TOL)

    def test_layer_norm(self, rng):
        with nn.default_dtype(np.float32):
            assert gradcheck(
                fused.layer_norm,
                _t32(rng, (2, 4, 5)),
                _t32(rng, (5,)),
                _t32(rng, (5,)),
                **self.TOL,
            )

    def test_gelu(self, rng):
        with nn.default_dtype(np.float32):
            assert gradcheck(fused.gelu, _t32(rng, (12,), scale=2.0), **self.TOL)

    def test_dropout_residual(self, rng):
        with nn.default_dtype(np.float32):
            assert gradcheck(
                lambda x, res: fused.dropout_residual(
                    x, res, p=0.3, training=True, rng=np.random.default_rng(11)
                ),
                _t32(rng, (4, 3)),
                _t32(rng, (4, 3)),
                **self.TOL,
            )

    def test_attention(self, rng):
        shape = (1, 2, 4, 3)
        with nn.default_dtype(np.float32):
            assert gradcheck(
                lambda q, k, v: fused.scaled_dot_product_attention(
                    q, k, v, scale=0.6
                )[0],
                _t32(rng, shape),
                _t32(rng, shape),
                _t32(rng, shape),
                **self.TOL,
            )

    def test_attention_with_dropout(self, rng):
        shape = (1, 1, 3, 2)
        with nn.default_dtype(np.float32):
            assert gradcheck(
                lambda q, k, v: fused.scaled_dot_product_attention(
                    q, k, v, scale=0.6, dropout_p=0.4, training=True,
                    rng=np.random.default_rng(5),
                )[0],
                _t32(rng, shape),
                _t32(rng, shape),
                _t32(rng, shape),
                **self.TOL,
            )

    def test_still_rejects_wrong_gradient(self, rng):
        """The loosened float32 tolerances must not excuse a wrong formula."""

        def bad_square(x: Tensor) -> Tensor:
            def backward(grad):
                x._accumulate(grad * x.data)  # missing the factor of 2

            return Tensor._make(x.data**2, (x,), backward)

        with nn.default_dtype(np.float32):
            with pytest.raises(GradcheckError):
                gradcheck(
                    lambda t: bad_square(t).sum(),
                    _t32(rng, (3,), shift=1.0),
                    **self.TOL,
                )
