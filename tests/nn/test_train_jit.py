"""Train-step tape JIT: bitwise fit equivalence, guards, fallbacks, cache.

The contract of :mod:`repro.nn.jit_train` is stricter than the scoring
tape's: the *whole trajectory* — per-batch losses, final weights,
optimizer moments and the RNG stream — must be bitwise-identical between
the compiled and interpreted train loops.  Every equivalence assertion
here uses ``np.array_equal``, never ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAEConfig
from repro.core.model import TFMAEModel
from repro.core.trainer import TFMAETrainer
from repro.nn import fused
from repro.nn.jit_train import (
    CompiledStepError,
    TrainStep,
    _TrainTapeBuilder,
    TrainTape,
    set_train_jit,
    train_jit_enabled,
    use_train_jit,
)
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, op_hook


def _series(length: int = 360, features: int = 2) -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 23.0)[:, None]
    return np.repeat(base, features, axis=1) + 0.05 * rng.normal(
        size=(length, features)
    )


def _config(**overrides) -> TFMAEConfig:
    base = dict(
        window_size=30,
        d_model=8,
        num_layers=1,
        num_heads=2,
        temporal_mask_ratio=30.0,
        frequency_mask_ratio=30.0,
        batch_size=4,
        epochs=2,
        learning_rate=1e-3,
        seed=0,
        preflight=False,
    )
    base.update(overrides)
    return TFMAEConfig(**base)


def _fit(config: TFMAEConfig, series=None):
    model = TFMAEModel(2, config)
    trainer = TFMAETrainer(model, config)
    log = trainer.fit(_series() if series is None else series)
    return model, trainer, log


def _assert_same_trajectory(config_overrides: dict) -> TFMAETrainer:
    """Fit twice (train JIT off/on) and require bitwise-equal results."""
    interp_model, _, interp_log = _fit(_config(train_jit=False, **config_overrides))
    jit_model, jit_trainer, jit_log = _fit(_config(train_jit=True, **config_overrides))
    assert np.array_equal(interp_log.losses, jit_log.losses)
    interp_state = interp_model.state_dict()
    jit_state = jit_model.state_dict()
    assert set(interp_state) == set(jit_state)
    for key in interp_state:
        assert np.array_equal(interp_state[key], jit_state[key]), key
    return jit_trainer


class TestBitwiseFitEquivalence:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"compute_dtype": "float32"},
            {"adversarial": False},
            {"use_frequency_branch": False},
            {"use_temporal_branch": False},
        ],
        ids=["default", "float32", "non-adversarial", "temporal-only",
             "frequency-only"],
    )
    def test_fit_matches_interpreted(self, overrides):
        trainer = _assert_same_trajectory(overrides)
        step = trainer.train_step
        assert step.traces >= 1
        assert step.replays >= 1
        assert step.fallbacks == 0

    def test_fit_matches_with_fused_kernels_off(self):
        with fused.use_fused(False):
            trainer = _assert_same_trajectory({})
        assert trainer.train_step.replays >= 1

    def test_optimizer_moments_match(self):
        _, interp_trainer, _ = _fit(_config(train_jit=False))
        _, jit_trainer, _ = _fit(_config(train_jit=True))
        interp_opt = interp_trainer.optimizer.state_dict()
        jit_opt = jit_trainer.optimizer.state_dict()
        assert set(interp_opt) == set(jit_opt)
        for key in interp_opt:
            entry_a, entry_b = interp_opt[key], jit_opt[key]
            if isinstance(entry_a, np.ndarray):
                assert np.array_equal(entry_a, entry_b), key
            else:
                assert entry_a == entry_b, key


class TestFallbacks:
    def test_dropout_falls_back_to_interpreted(self):
        """Fresh dropout masks per batch are untraceable; the fit must
        run interpreted — and still match the interpreted trajectory."""
        trainer = _assert_same_trajectory({"dropout": 0.1})
        step = trainer.train_step
        assert step.traces == 0
        assert step.replays == 0
        assert step.fallbacks > 0

    def test_detect_anomaly_runs_interpreted(self):
        """An active sanitizer hook needs per-op attribution, so the
        compiled step stands aside."""
        trainer = _assert_same_trajectory({"detect_anomaly": True})
        step = trainer.train_step
        assert step.replays == 0
        assert step.fallbacks > 0

    def test_overridden_loss_is_respected(self):
        config = _config(train_jit=True)
        model = TFMAEModel(2, config)
        calls = {"n": 0}
        original = model.loss

        def counting_loss(batch):
            calls["n"] += 1
            return original(batch)

        model.loss = counting_loss
        trainer = TFMAETrainer(model, config)
        log = trainer.fit(_series())
        assert calls["n"] == len(log.losses)
        assert trainer.train_step.replays == 0


class TestToggles:
    def test_toggle_trio(self):
        assert train_jit_enabled()
        set_train_jit(False)
        try:
            assert not train_jit_enabled()
            with use_train_jit(True):
                assert train_jit_enabled()
                with use_train_jit(False):
                    assert not train_jit_enabled()
                assert train_jit_enabled()
            assert not train_jit_enabled()
        finally:
            set_train_jit(True)
        assert train_jit_enabled()

    def test_use_train_jit_false_forces_interpreted(self):
        config = _config(train_jit=True)
        model = TFMAEModel(2, config)
        trainer = TFMAETrainer(model, config)
        with use_train_jit(False):
            trainer.fit(_series())
        assert trainer.train_step.traces == 0
        assert trainer.train_step.fallbacks > 0


class TestGuardsAndCache:
    def test_rebound_parameter_invalidates_and_retraces(self):
        config = _config(train_jit=True, epochs=1)
        model = TFMAEModel(2, config)
        trainer = TFMAETrainer(model, config)
        trainer.fit(_series())
        step = trainer.train_step
        traces_before = step.traces
        assert step._tapes
        # Rebind one parameter's array (what a checkpoint restore or a
        # dtype migration does): every cached tape must be discarded and
        # the next fit must retrace, not replay stale buffers.
        param = next(iter(model.parameters()))
        param.data = param.data.copy()
        trainer.fit(_series())
        assert step.traces > traces_before

    def test_lru_eviction_counts(self):
        config = _config(train_jit=True, jit_cache_size=1, epochs=1)
        model = TFMAEModel(2, config)
        trainer = TFMAETrainer(model, config)
        # 9 windows at batch_size=4 -> batches of 4, 4 and 1: two distinct
        # shape keys, capacity one, so the second key evicts the first.
        series = _series(length=9 * config.window_size)
        trainer.fit(series)
        assert trainer.train_step.evictions >= 1

    def test_cache_size_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_CACHE", "3")
        assert TFMAEConfig().jit_cache_size == 3

    def test_cache_size_validated(self):
        with pytest.raises(ValueError, match="jit_cache_size"):
            TFMAEConfig(jit_cache_size=0)


class TestCompiledStepError:
    def _tape(self):
        rng = np.random.default_rng(0)
        weight = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        slots = {"x": rng.normal(size=(3, 4))}
        builder = _TrainTapeBuilder(slots, [weight])
        optimizer = Adam([weight], lr=1e-3)
        with op_hook(builder):
            out = Tensor(slots["x"], requires_grad=False).matmul(weight)
            loss = (out * out).sum()
            optimizer.zero_grad()
            loss.backward()
        return TrainTape(builder, loss, {}, optimizer), slots

    def test_failure_names_op_and_site(self):
        tape, slots = self._tape()
        frame = [np.empty(shape, dtype) for shape, dtype in tape._frame_specs]
        # Corrupt the first planned buffer so the matmul's out= raises.
        frame[0] = np.empty((1, 1), dtype=frame[0].dtype)
        gen = tape._fn(slots, frame, 1e-3, 1.0, 1.0)
        with pytest.raises(CompiledStepError) as excinfo:
            tape._advance(gen, "forward")
        error = excinfo.value
        assert error.phase == "forward"
        assert error.op == "matmul"
        assert error.site is not None and "test_train_jit" in error.site
        assert "matmul" in str(error)


class TestCheckpointResumeUnderTrainJit:
    """Satellite: resume may flip the train-JIT toggle mid-run freely —
    the trajectory is execution-strategy independent."""

    @pytest.mark.parametrize("first,second", [(True, False), (False, True)])
    def test_resume_across_toggle_is_bitwise_identical(
        self, tmp_path, first, second
    ):
        series = _series()
        reference_model, _, reference_log = _fit(
            _config(train_jit=True, epochs=4)
        )

        part1 = _config(train_jit=first, epochs=2,
                        checkpoint_dir=str(tmp_path))
        _fit(part1, series=series)

        part2 = _config(train_jit=second, epochs=4,
                        checkpoint_dir=str(tmp_path), resume=True)
        resumed_model, _, resumed_log = _fit(part2, series=series)

        assert resumed_log.resumed
        reference_state = reference_model.state_dict()
        resumed_state = resumed_model.state_dict()
        for key in reference_state:
            assert np.array_equal(reference_state[key], resumed_state[key]), key
        # The resumed log holds epochs 3-4; they must equal the reference
        # run's tail exactly.
        tail = len(resumed_log.losses)
        assert np.array_equal(
            reference_log.losses[-tail:], resumed_log.losses
        )
