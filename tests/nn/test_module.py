"""Module system tests: registration, traversal, state dicts, freezing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor
from repro.nn.module import frozen


class _TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(3, 4, rng)
        self.second = Linear(4, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestRegistration:
    def test_parameters_enumerated_recursively(self, rng):
        model = _TwoLayer(rng)
        names = [name for name, _ in model.named_parameters()]
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names
        assert len(list(model.parameters())) == 5

    def test_num_parameters(self, rng):
        model = _TwoLayer(rng)
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_children(self, rng):
        model = _TwoLayer(rng)
        assert len(list(model.children())) == 2

    def test_train_eval_propagates(self, rng):
        model = _TwoLayer(rng)
        assert model.training
        model.eval()
        assert not model.training
        assert not model.first.training
        model.train()
        assert model.first.training

    def test_zero_grad_clears_all(self, rng):
        model = _TwoLayer(rng)
        out = model(Tensor(rng.normal(size=(2, 3))))
        (out * out).mean().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        source = _TwoLayer(rng)
        target = _TwoLayer(np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self, rng):
        model = _TwoLayer(rng)
        state = model.state_dict()
        state["scale"][:] = 99.0
        assert model.scale.data[0] == 1.0

    def test_missing_key_raises(self, rng):
        model = _TwoLayer(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = _TwoLayer(rng)
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestFreezing:
    def test_freeze_is_permanent(self, rng):
        model = _TwoLayer(rng)
        model.freeze()
        out = model(Tensor(rng.normal(size=(2, 3)), requires_grad=False))
        assert not out.requires_grad

    def test_frozen_context_restores(self, rng):
        model = _TwoLayer(rng)
        x = Tensor(rng.normal(size=(2, 3)))
        with frozen(model):
            inside = model(x)
            assert not inside.requires_grad
        outside = model(x)
        assert outside.requires_grad

    def test_frozen_blocks_param_grads_but_not_input_grads(self, rng):
        model = _TwoLayer(rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        with frozen(model):
            (model(x) ** 2).mean().backward()
        assert x.grad is not None
        assert all(p.grad is None for p in model.parameters())

    def test_frozen_restores_partial_freeze(self, rng):
        # A module with some already-frozen parameters keeps them frozen
        # after the context exits.
        model = _TwoLayer(rng)
        model.scale.requires_grad = False
        with frozen(model):
            pass
        assert not model.scale.requires_grad
        assert model.first.weight.requires_grad


class TestSequential:
    def test_order_and_indexing(self, rng):
        seq = Sequential(Linear(3, 5, rng), Linear(5, 2, rng))
        assert len(seq) == 2
        assert seq[0].out_features == 5
        out = seq(Tensor(rng.normal(size=(4, 3))))
        assert out.shape == (4, 2)

    def test_repr_contains_children(self, rng):
        seq = Sequential(Linear(3, 5, rng))
        assert "Linear" in repr(seq)
