"""Fused-kernel equivalence: forward bitwise, backward via gradcheck.

Every fused op in :mod:`repro.nn.fused` must match its unfused reference
composition exactly in float64 (same op sequence => bit-identical
forward) and carry a correct hand-written backward (finite-difference
gradcheck plus direct comparison against the reference graph's
gradients).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.nn import Tensor, fused, gradcheck
from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerLayer

FORWARD_ATOL = 1e-10


def _finite_arrays(shape):
    return arrays(
        np.float64,
        shape,
        elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
    )


class TestFusedSwitch:
    def test_default_enabled(self):
        assert fused.fused_enabled()

    def test_context_manager_restores(self):
        assert fused.fused_enabled()
        with fused.use_fused(False):
            assert not fused.fused_enabled()
            with fused.use_fused(True):
                assert fused.fused_enabled()
            assert not fused.fused_enabled()
        assert fused.fused_enabled()

    def test_functional_dispatch(self, rng):
        """functional entry points follow the switch."""
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        with fused.use_fused(True):
            fused_out = F.softmax(x)
        with fused.use_fused(False):
            reference_out = F.softmax(x)
        # The fused node has one parent and no intermediate chain.
        assert fused_out._parents == (x,)
        assert reference_out._parents != (x,)
        np.testing.assert_array_equal(fused_out.data, reference_out.data)


class TestForwardBitwise:
    """Fused forward == reference forward, bit-for-bit in float64."""

    def test_softmax(self, rng):
        x = rng.normal(size=(4, 6, 8)) * 3.0
        out = fused.softmax(Tensor(x))
        ref = fused.reference_softmax(Tensor(x))
        assert np.array_equal(out.data, ref.data)

    def test_softmax_other_axis(self, rng):
        x = rng.normal(size=(5, 7))
        out = fused.softmax(Tensor(x), axis=0)
        ref = fused.reference_softmax(Tensor(x), axis=0)
        assert np.array_equal(out.data, ref.data)

    def test_log_softmax(self, rng):
        x = rng.normal(size=(4, 9)) * 4.0
        out = fused.log_softmax(Tensor(x))
        ref = fused.reference_log_softmax(Tensor(x))
        assert np.array_equal(out.data, ref.data)

    def test_layer_norm(self, rng):
        x = Tensor(rng.normal(size=(3, 5, 8)))
        weight = Tensor(rng.normal(size=(8,)))
        bias = Tensor(rng.normal(size=(8,)))
        out = fused.layer_norm(x, weight, bias)
        ref = fused.reference_layer_norm(x, weight, bias)
        assert np.array_equal(out.data, ref.data)

    def test_gelu(self, rng):
        x = rng.normal(size=(100,)) * 3.0
        out = fused.gelu(Tensor(x))
        ref = fused.reference_gelu(Tensor(x))
        assert np.array_equal(out.data, ref.data)

    def test_dropout_residual_matches_rng_stream(self, rng):
        x = rng.normal(size=(6, 8))
        res = rng.normal(size=(6, 8))
        out = fused.dropout_residual(
            Tensor(x), Tensor(res), p=0.3, training=True,
            rng=np.random.default_rng(7),
        )
        ref = fused.reference_dropout_residual(
            Tensor(x), Tensor(res), p=0.3, training=True,
            rng=np.random.default_rng(7),
        )
        assert np.array_equal(out.data, ref.data)

    def test_dropout_residual_eval_mode(self, rng):
        x, res = rng.normal(size=(4,)), rng.normal(size=(4,))
        out = fused.dropout_residual(Tensor(x), Tensor(res), p=0.5, training=False)
        np.testing.assert_array_equal(out.data, res + x)

    def test_attention(self, rng):
        q = Tensor(rng.normal(size=(2, 3, 5, 4)))
        k = Tensor(rng.normal(size=(2, 3, 5, 4)))
        v = Tensor(rng.normal(size=(2, 3, 5, 4)))
        out, weights = fused.scaled_dot_product_attention(q, k, v, scale=0.5)
        ref, ref_weights = fused.reference_scaled_dot_product_attention(
            q, k, v, scale=0.5
        )
        assert np.array_equal(out.data, ref.data)
        assert np.array_equal(weights, ref_weights)

    def test_attention_with_dropout(self, rng):
        q = Tensor(rng.normal(size=(2, 2, 4, 3)))
        k = Tensor(rng.normal(size=(2, 2, 4, 3)))
        v = Tensor(rng.normal(size=(2, 2, 4, 3)))
        out, _ = fused.scaled_dot_product_attention(
            q, k, v, scale=0.5, dropout_p=0.25, training=True,
            rng=np.random.default_rng(3),
        )
        ref, _ = fused.reference_scaled_dot_product_attention(
            q, k, v, scale=0.5, dropout_p=0.25, training=True,
            rng=np.random.default_rng(3),
        )
        assert np.array_equal(out.data, ref.data)

    def test_invalid_dropout_probability(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        with pytest.raises(ValueError):
            fused.dropout_residual(x, x, p=1.5, training=True)
        with pytest.raises(ValueError):
            fused.scaled_dot_product_attention(
                x, x, x, scale=1.0, dropout_p=1.5, training=True
            )


class TestBackwardEquivalence:
    """Fused hand-written backwards == reference graph gradients."""

    @staticmethod
    def _grads(factory, seed_grad, *tensors):
        out = factory(*tensors)
        out.backward(seed_grad)
        return [t.grad for t in tensors]

    def test_softmax(self, rng):
        x = rng.normal(size=(3, 6))
        seed = rng.normal(size=(3, 6))
        fused_grads = self._grads(
            fused.softmax, seed, Tensor(x, requires_grad=True)
        )
        ref_grads = self._grads(
            fused.reference_softmax, seed, Tensor(x, requires_grad=True)
        )
        np.testing.assert_allclose(fused_grads[0], ref_grads[0], atol=1e-14)

    def test_log_softmax(self, rng):
        x = rng.normal(size=(4, 5))
        seed = rng.normal(size=(4, 5))
        fused_grads = self._grads(
            fused.log_softmax, seed, Tensor(x, requires_grad=True)
        )
        ref_grads = self._grads(
            fused.reference_log_softmax, seed, Tensor(x, requires_grad=True)
        )
        np.testing.assert_allclose(fused_grads[0], ref_grads[0], atol=1e-14)

    def test_layer_norm(self, rng):
        x = rng.normal(size=(3, 4, 6))
        w = rng.normal(size=(6,))
        b = rng.normal(size=(6,))
        seed = rng.normal(size=(3, 4, 6))
        fused_grads = self._grads(
            fused.layer_norm, seed,
            Tensor(x, requires_grad=True),
            Tensor(w, requires_grad=True),
            Tensor(b, requires_grad=True),
        )
        ref_grads = self._grads(
            fused.reference_layer_norm, seed,
            Tensor(x, requires_grad=True),
            Tensor(w, requires_grad=True),
            Tensor(b, requires_grad=True),
        )
        for got, want in zip(fused_grads, ref_grads):
            np.testing.assert_allclose(got, want, atol=1e-12)

    def test_gelu(self, rng):
        x = rng.normal(size=(40,)) * 2.0
        seed = rng.normal(size=(40,))
        fused_grads = self._grads(fused.gelu, seed, Tensor(x, requires_grad=True))
        ref_grads = self._grads(
            fused.reference_gelu, seed, Tensor(x, requires_grad=True)
        )
        np.testing.assert_allclose(fused_grads[0], ref_grads[0], atol=1e-13)

    def test_dropout_residual(self, rng):
        x = rng.normal(size=(5, 4))
        res = rng.normal(size=(5, 4))
        seed = rng.normal(size=(5, 4))
        fused_grads = self._grads(
            lambda a, b: fused.dropout_residual(
                a, b, p=0.4, training=True, rng=np.random.default_rng(1)
            ),
            seed,
            Tensor(x, requires_grad=True),
            Tensor(res, requires_grad=True),
        )
        ref_grads = self._grads(
            lambda a, b: fused.reference_dropout_residual(
                a, b, p=0.4, training=True, rng=np.random.default_rng(1)
            ),
            seed,
            Tensor(x, requires_grad=True),
            Tensor(res, requires_grad=True),
        )
        for got, want in zip(fused_grads, ref_grads):
            np.testing.assert_allclose(got, want, atol=1e-14)

    def test_attention(self, rng):
        shape = (2, 2, 5, 3)
        q, k, v = (rng.normal(size=shape) for _ in range(3))
        seed = rng.normal(size=shape)
        fused_grads = self._grads(
            lambda a, b, c: fused.scaled_dot_product_attention(
                a, b, c, scale=0.7
            )[0],
            seed,
            Tensor(q, requires_grad=True),
            Tensor(k, requires_grad=True),
            Tensor(v, requires_grad=True),
        )
        ref_grads = self._grads(
            lambda a, b, c: fused.reference_scaled_dot_product_attention(
                a, b, c, scale=0.7
            )[0],
            seed,
            Tensor(q, requires_grad=True),
            Tensor(k, requires_grad=True),
            Tensor(v, requires_grad=True),
        )
        for got, want in zip(fused_grads, ref_grads):
            np.testing.assert_allclose(got, want, atol=1e-12)


class TestFusedGradcheck:
    """Finite-difference validation of every hand-written backward."""

    def test_softmax(self, rng):
        assert gradcheck(
            fused.softmax, Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        )

    def test_log_softmax(self, rng):
        assert gradcheck(
            fused.log_softmax, Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        )

    def test_layer_norm(self, rng):
        assert gradcheck(
            fused.layer_norm,
            Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True),
            Tensor(rng.normal(size=(5,)), requires_grad=True),
            Tensor(rng.normal(size=(5,)), requires_grad=True),
        )

    def test_gelu(self, rng):
        assert gradcheck(
            fused.gelu, Tensor(rng.normal(size=(12,)) * 2.0, requires_grad=True)
        )

    def test_dropout_residual(self, rng):
        # A fresh generator per call would change the mask between the
        # analytic pass and every finite-difference probe; a fixed seed
        # keeps the function deterministic, which gradcheck requires.
        assert gradcheck(
            lambda x, res: fused.dropout_residual(
                x, res, p=0.3, training=True, rng=np.random.default_rng(11)
            ),
            Tensor(rng.normal(size=(4, 3)), requires_grad=True),
            Tensor(rng.normal(size=(4, 3)), requires_grad=True),
        )

    def test_attention(self, rng):
        shape = (1, 2, 4, 3)
        assert gradcheck(
            lambda q, k, v: fused.scaled_dot_product_attention(
                q, k, v, scale=0.6
            )[0],
            Tensor(rng.normal(size=shape), requires_grad=True),
            Tensor(rng.normal(size=shape), requires_grad=True),
            Tensor(rng.normal(size=shape), requires_grad=True),
        )

    def test_attention_with_dropout(self, rng):
        shape = (1, 1, 3, 2)
        assert gradcheck(
            lambda q, k, v: fused.scaled_dot_product_attention(
                q, k, v, scale=0.6, dropout_p=0.4, training=True,
                rng=np.random.default_rng(5),
            )[0],
            Tensor(rng.normal(size=shape), requires_grad=True),
            Tensor(rng.normal(size=shape), requires_grad=True),
            Tensor(rng.normal(size=shape), requires_grad=True),
        )


class TestFusedProperties:
    """Hypothesis sweeps: fused == reference on arbitrary finite inputs."""

    @given(x=_finite_arrays((4, 7)))
    @settings(max_examples=25, deadline=None)
    def test_softmax_property(self, x):
        out = fused.softmax(Tensor(x))
        ref = fused.reference_softmax(Tensor(x))
        assert np.array_equal(out.data, ref.data)

    @given(x=_finite_arrays((3, 6)))
    @settings(max_examples=25, deadline=None)
    def test_log_softmax_property(self, x):
        out = fused.log_softmax(Tensor(x))
        ref = fused.reference_log_softmax(Tensor(x))
        assert np.array_equal(out.data, ref.data)

    @given(x=_finite_arrays((10,)))
    @settings(max_examples=25, deadline=None)
    def test_gelu_property(self, x):
        out = fused.gelu(Tensor(x))
        ref = fused.reference_gelu(Tensor(x))
        assert np.array_equal(out.data, ref.data)

    @given(x=_finite_arrays((4, 6)), w=_finite_arrays((6,)), b=_finite_arrays((6,)))
    @settings(max_examples=25, deadline=None)
    def test_layer_norm_property(self, x, w, b):
        out = fused.layer_norm(Tensor(x), Tensor(w), Tensor(b))
        ref = fused.reference_layer_norm(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, ref.data, atol=FORWARD_ATOL)
        assert np.array_equal(out.data, ref.data)


class TestAttentionModule:
    def _module_pair(self, rng_seed=0, dropout=0.0, keep_graph=False):
        module = MultiHeadSelfAttention(
            8, 2, np.random.default_rng(rng_seed), dropout=dropout,
            keep_attention_graph=keep_graph,
        )
        return module

    def test_fused_matches_reference_path(self, rng):
        x = rng.normal(size=(2, 6, 8))
        with fused.use_fused(True):
            module = self._module_pair()
            fused_out = module(Tensor(x))
            fused_weights = module.last_attention
        with fused.use_fused(False):
            module = self._module_pair()
            ref_out = module(Tensor(x))
            ref_weights = module.last_attention
        assert np.array_equal(fused_out.data, ref_out.data)
        assert np.array_equal(fused_weights, ref_weights)

    def test_keep_attention_graph_uses_reference(self, rng):
        """The Anomaly Transformer contract: weights stay on the graph."""
        x = rng.normal(size=(1, 5, 8))
        with fused.use_fused(True):
            module = self._module_pair(keep_graph=True)
            module(Tensor(x, requires_grad=True))
        assert module.last_attention_tensor is not None
        assert module.last_attention_tensor.requires_grad

    def test_fused_path_weights_detached(self, rng):
        x = rng.normal(size=(1, 5, 8))
        with fused.use_fused(True):
            module = self._module_pair()
            module(Tensor(x, requires_grad=True))
        assert module.last_attention_tensor is None
        assert module.last_attention is not None
        assert module.last_attention.shape == (1, 2, 5, 5)


class TestTransformerLayerSmoke:
    """Tier-1 smoke: the full fused layer equals the reference layer."""

    @staticmethod
    def _layer(dropout=0.0):
        return TransformerLayer(8, 2, np.random.default_rng(0), dropout=dropout)

    def test_forward_bitwise(self, rng):
        x = rng.normal(size=(2, 10, 8))
        with fused.use_fused(True):
            fused_out = self._layer()(Tensor(x))
        with fused.use_fused(False):
            ref_out = self._layer()(Tensor(x))
        assert np.array_equal(fused_out.data, ref_out.data)

    def test_backward_grads_match(self, rng):
        x = rng.normal(size=(2, 6, 8))

        def run(enabled):
            with fused.use_fused(enabled):
                layer = self._layer()
                inp = Tensor(x, requires_grad=True)
                layer(inp).sum().backward()
                return inp.grad, {n: p.grad for n, p in layer.named_parameters()}

        fused_in, fused_params = run(True)
        ref_in, ref_params = run(False)
        np.testing.assert_allclose(fused_in, ref_in, atol=1e-12)
        assert fused_params.keys() == ref_params.keys()
        for name in fused_params:
            np.testing.assert_allclose(
                fused_params[name], ref_params[name], atol=1e-12,
                err_msg=f"parameter {name}",
            )

    def test_training_mode_rng_streams_align(self, rng):
        """With dropout on, fused and reference consume identical randomness."""
        x = rng.normal(size=(2, 5, 8))

        def run(enabled):
            with fused.use_fused(enabled):
                layer = self._layer(dropout=0.2)
                layer.train()
                return layer(Tensor(x)).data

        assert np.array_equal(run(True), run(False))
