"""Transformer block and positional-encoding tests (paper Eq. 11-13)."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor, TransformerLayer, TransformerStack
from repro.nn.transformer import sinusoidal_positional_encoding


class TestPositionalEncoding:
    def test_shape(self):
        assert sinusoidal_positional_encoding(10, 16).shape == (10, 16)

    def test_eq11_even_odd_structure(self):
        pe = sinusoidal_positional_encoding(50, 8)
        t = np.arange(50)
        np.testing.assert_allclose(pe[:, 0], np.sin(t / 10000 ** (0 / 8)))
        np.testing.assert_allclose(pe[:, 1], np.cos(t / 10000 ** (0 / 8)))
        np.testing.assert_allclose(pe[:, 2], np.sin(t / 10000 ** (2 / 8)))
        np.testing.assert_allclose(pe[:, 3], np.cos(t / 10000 ** (2 / 8)))

    def test_explicit_positions(self):
        full = sinusoidal_positional_encoding(100, 8)
        positions = np.array([3, 17, 42])
        subset = sinusoidal_positional_encoding(0, 8, positions=positions)
        np.testing.assert_allclose(subset, full[positions])

    def test_bounded(self):
        pe = sinusoidal_positional_encoding(200, 32)
        assert np.all(np.abs(pe) <= 1.0)

    def test_distinct_positions_distinct_codes(self):
        pe = sinusoidal_positional_encoding(64, 16)
        distances = np.linalg.norm(pe[:, None] - pe[None, :], axis=-1)
        off_diagonal = distances + np.eye(64) * 1e9
        assert off_diagonal.min() > 1e-3


class TestTransformerLayer:
    def test_shape_preserved(self, rng):
        layer = TransformerLayer(16, 4, rng)
        assert layer(Tensor(rng.normal(size=(2, 7, 16)))).shape == (2, 7, 16)

    def test_custom_ffn_dim(self, rng):
        layer = TransformerLayer(16, 4, rng, ffn_dim=8)
        assert layer.ffn[0].out_features == 8

    def test_not_identity(self, rng):
        layer = TransformerLayer(16, 4, rng)
        x = rng.normal(size=(1, 5, 16))
        assert not np.allclose(layer(Tensor(x)).data, x)

    def test_gradients_reach_every_parameter(self, rng):
        layer = TransformerLayer(8, 2, rng)
        (layer(Tensor(rng.normal(size=(2, 4, 8)))) ** 2).mean().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, f"no grad for {name}"


class TestTransformerStack:
    def test_depth_and_indexing(self, rng):
        stack = TransformerStack(8, 3, 2, rng)
        assert len(stack) == 3
        assert isinstance(stack[1], TransformerLayer)

    def test_forward_shape(self, rng):
        stack = TransformerStack(8, 3, 2, rng)
        assert stack(Tensor(rng.normal(size=(2, 5, 8)))).shape == (2, 5, 8)

    def test_zero_layers_is_identity(self, rng):
        stack = TransformerStack(8, 0, 2, rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        assert stack(x) is x

    def test_parameter_count_scales_with_depth(self, rng):
        shallow = TransformerStack(8, 1, 2, rng)
        deep = TransformerStack(8, 4, 2, np.random.default_rng(0))
        assert deep.num_parameters() == 4 * shallow.num_parameters()
