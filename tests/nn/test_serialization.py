"""Checkpoint save/load tests."""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Module, Sequential, Tensor, load_model, save_model


def _make_model(seed: int) -> Module:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(3, 8, rng), Linear(8, 2, rng))


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path, rng):
        source = _make_model(0)
        path = tmp_path / "model.npz"
        save_model(source, path)

        target = _make_model(123)
        x = Tensor(rng.normal(size=(4, 3)))
        assert not np.allclose(source(x).data, target(x).data)

        load_model(target, path)
        np.testing.assert_array_equal(source(x).data, target(x).data)

    def test_load_appends_npz_suffix(self, tmp_path):
        source = _make_model(0)
        save_model(source, tmp_path / "ckpt")  # numpy appends .npz
        target = _make_model(1)
        load_model(target, tmp_path / "ckpt")
        np.testing.assert_array_equal(
            source.state_dict()["layer0.weight"], target.state_dict()["layer0.weight"]
        )
