"""Checkpoint save/load tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CheckpointError,
    Linear,
    Module,
    Sequential,
    Tensor,
    load_model,
    load_training_state,
    save_model,
    save_training_state,
)


def _make_model(seed: int) -> Module:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(3, 8, rng), Linear(8, 2, rng))


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path, rng):
        source = _make_model(0)
        path = tmp_path / "model.npz"
        save_model(source, path)

        target = _make_model(123)
        x = Tensor(rng.normal(size=(4, 3)))
        assert not np.allclose(source(x).data, target(x).data)

        load_model(target, path)
        np.testing.assert_array_equal(source(x).data, target(x).data)

    def test_load_appends_npz_suffix(self, tmp_path):
        source = _make_model(0)
        save_model(source, tmp_path / "ckpt")  # numpy appends .npz
        target = _make_model(1)
        load_model(target, tmp_path / "ckpt")
        np.testing.assert_array_equal(
            source.state_dict()["layer0.weight"], target.state_dict()["layer0.weight"]
        )

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_model(_make_model(0), tmp_path / "absent.npz")

    def test_architecture_mismatch_names_offending_keys(self, tmp_path):
        rng = np.random.default_rng(0)
        source = Sequential(Linear(3, 8, rng), Linear(8, 2, rng))
        path = tmp_path / "model.npz"
        save_model(source, path)
        # One layer fewer: the checkpoint has unexpected layer1.* keys.
        target = Sequential(Linear(3, 8, rng))
        with pytest.raises(CheckpointError) as excinfo:
            load_model(target, path)
        assert "unexpected keys" in str(excinfo.value)
        assert "layer1.weight" in str(excinfo.value)

    def test_shape_mismatch_names_both_shapes(self, tmp_path):
        rng = np.random.default_rng(0)
        source = Sequential(Linear(3, 8, rng), Linear(8, 2, rng))
        path = tmp_path / "model.npz"
        save_model(source, path)
        target = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        with pytest.raises(CheckpointError) as excinfo:
            load_model(target, path)
        message = str(excinfo.value)
        assert "shape mismatch" in message and "layer0.weight" in message
        # The target model was not partially mutated by the failed load.
        assert target.state_dict()["layer0.weight"].shape == (3, 4)

    def test_atomic_overwrite_leaves_no_temp_files(self, tmp_path):
        model = _make_model(0)
        path = tmp_path / "model.npz"
        save_model(model, path)
        save_model(model, path)  # overwrite via the same atomic path
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]


class TestTrainingState:
    def test_roundtrip_restores_optimizer_and_metadata(self, tmp_path, rng):
        model = _make_model(0)
        optimizer = Adam(model.parameters(), lr=3e-3)
        # Take a couple of steps so the moment buffers are non-trivial.
        for _ in range(3):
            loss = (model(Tensor(rng.normal(size=(4, 3)))) ** 2).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        metadata = {"epoch": 7, "note": "mid-run"}
        path = save_training_state(tmp_path / "state", model, optimizer, metadata)

        restored_model = _make_model(1)
        restored_optimizer = Adam(restored_model.parameters(), lr=1e-4)
        loaded_meta, extra = load_training_state(path, restored_model, restored_optimizer)

        assert loaded_meta == metadata
        assert extra == {}
        assert restored_optimizer._step == optimizer._step
        assert restored_optimizer.lr == optimizer.lr
        for a, b in zip(optimizer._m, restored_optimizer._m):
            np.testing.assert_array_equal(a, b)
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_array_equal(model(x).data, restored_model(x).data)

    def test_bare_model_archive_is_rejected(self, tmp_path):
        model = _make_model(0)
        save_model(model, tmp_path / "bare.npz")
        with pytest.raises(CheckpointError, match="metadata"):
            load_training_state(tmp_path / "bare.npz", _make_model(1))

    def test_extra_arrays_roundtrip(self, tmp_path):
        model = _make_model(0)
        best = {f"best.{k}": v for k, v in model.state_dict().items()}
        path = save_training_state(tmp_path / "state", model, None, {"epoch": 1},
                                   extra_arrays=best)
        _, extra = load_training_state(path, _make_model(1))
        assert set(extra) == set(best)

    def test_load_metadata_reads_without_a_model(self, tmp_path):
        from repro.nn import load_metadata

        metadata = {"epoch": 3, "config": {"window_size": 50}}
        path = save_training_state(tmp_path / "state", _make_model(0), None, metadata)
        assert load_metadata(path) == metadata

    def test_load_metadata_rejects_bare_model_archive(self, tmp_path):
        from repro.nn import load_metadata

        save_model(_make_model(0), tmp_path / "bare.npz")
        with pytest.raises(CheckpointError, match="metadata"):
            load_metadata(tmp_path / "bare.npz")

    def test_load_metadata_missing_file(self, tmp_path):
        from repro.nn import load_metadata

        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_metadata(tmp_path / "ghost.npz")


class TestSharedStateLayout:
    """Flat-buffer layout for shared-memory weight segments."""

    def test_layout_offsets_are_aligned_and_nonoverlapping(self):
        from repro.nn.serialization import state_layout

        state = _make_model(0).state_dict()
        nbytes, manifest = state_layout(state)
        previous_end = 0
        for entry in manifest:
            assert entry["offset"] % 64 == 0
            assert entry["offset"] >= previous_end
            array = state[entry["key"]]
            assert tuple(entry["shape"]) == array.shape
            assert np.dtype(entry["dtype"]) == array.dtype
            previous_end = entry["offset"] + array.nbytes
        assert nbytes >= previous_end
        assert [e["key"] for e in manifest] == list(state)

    def test_pack_unpack_roundtrip_is_bitwise(self):
        from repro.nn.serialization import pack_state_into, state_layout, unpack_state

        state = _make_model(1).state_dict()
        nbytes, manifest = state_layout(state)
        buffer = bytearray(nbytes)
        pack_state_into(buffer, state, manifest)
        restored = unpack_state(buffer, manifest)
        assert set(restored) == set(state)
        for key, array in state.items():
            assert np.array_equal(restored[key], array)
            assert restored[key].dtype == array.dtype

    def test_unpacked_views_are_zero_copy_and_read_only(self):
        from repro.nn.serialization import pack_state_into, state_layout, unpack_state

        state = _make_model(2).state_dict()
        nbytes, manifest = state_layout(state)
        buffer = bytearray(nbytes)
        pack_state_into(buffer, state, manifest)
        views = unpack_state(buffer, manifest)
        key = manifest[0]["key"]
        assert not views[key].flags.writeable
        with pytest.raises(ValueError):
            views[key][...] = 0.0
        # Zero-copy: mutating the buffer shows through the view.
        writable = unpack_state(buffer, manifest, writeable=True)
        writable[key][...] = 7.0
        assert np.all(views[key] == 7.0)

    def test_pack_rejects_mismatched_manifest(self):
        from repro.nn.serialization import pack_state_into, state_layout

        state = _make_model(3).state_dict()
        nbytes, manifest = state_layout(state)
        other = {k: v[..., :-1] if v.ndim > 1 else v for k, v in state.items()}
        with pytest.raises(CheckpointError):
            pack_state_into(bytearray(nbytes), other, manifest)


class TestZeroCopyBind:
    """Module.load_state_dict(copy=False): shared-segment binding."""

    def test_bound_module_matches_source_bitwise(self, rng):
        from repro.nn.serialization import pack_state_into, state_layout, unpack_state

        source = _make_model(4)
        nbytes, manifest = state_layout(source.state_dict())
        buffer = bytearray(nbytes)
        pack_state_into(buffer, source.state_dict(), manifest)
        target = _make_model(5)
        target.load_state_dict(unpack_state(buffer, manifest), copy=False)
        x = rng.normal(size=(6, 3))
        assert np.array_equal(source(Tensor(x)).data, target(Tensor(x)).data)
        # The parameters ARE the buffer views, not copies.
        for _name, param in target.named_parameters():
            assert not param.data.flags.writeable
            assert param.data.base is not None

    def test_bind_rejects_dtype_mismatch(self):
        source = _make_model(6)
        state = {k: v.astype(np.float32) for k, v in source.state_dict().items()}
        with pytest.raises(ValueError, match="dtype mismatch"):
            source.load_state_dict(state, copy=False)

    def test_copy_true_still_casts(self):
        source = _make_model(7)
        state = {k: v.astype(np.float32) for k, v in source.state_dict().items()}
        source.load_state_dict(state, copy=True)
        for _name, param in source.named_parameters():
            assert param.data.dtype == np.float64
