"""Streaming-detector tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector import BaseDetector
from repro.streaming import StreamingDetector


class _ThresholdOnLastValue(BaseDetector):
    """Toy detector whose score is |value| of the first feature."""

    name = "abs"

    def _fit(self, train: np.ndarray) -> None:
        pass

    def score(self, series: np.ndarray) -> np.ndarray:
        return np.abs(series[:, 0])


def _fitted_detector(rng) -> _ThresholdOnLastValue:
    detector = _ThresholdOnLastValue(anomaly_ratio=5.0)
    detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(500, 1)))
    return detector


class TestStreamingDetector:
    def test_requires_calibrated_detector(self, rng):
        detector = _ThresholdOnLastValue()
        detector.fit(rng.normal(size=(50, 1)))
        with pytest.raises(ValueError):
            StreamingDetector(detector)

    def test_invalid_context(self, rng):
        with pytest.raises(ValueError):
            StreamingDetector(_fitted_detector(rng), context=1)

    def test_warmup_period_silent(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=10)
        events = stream.update_many(rng.normal(size=(5, 1)))
        assert all(not event.is_anomaly for event in events)
        # Warmup scores are NaN (not a misleading 0.0) and flagged as such.
        assert all(np.isnan(event.score) for event in events)
        assert all("warmup" in event.flags for event in events)

    def test_indices_sequential(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=5, warmup=0)
        events = stream.update_many(rng.normal(size=(7, 1)))
        assert [event.index for event in events] == list(range(7))
        assert stream.observations_seen == 7

    def test_detects_streamed_spike(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=10, warmup=5)
        for _ in range(20):
            event = stream.update(np.array([0.1]))
            assert not event.is_anomaly
        spike = stream.update(np.array([50.0]))
        assert spike.is_anomaly
        assert spike.score == pytest.approx(50.0)

    def test_buffer_bounded(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=4, warmup=0)
        stream.update_many(rng.normal(size=(100, 1)))
        assert len(stream._buffer) == 4

    def test_matches_offline_window_end_scores(self, rng):
        """For any detector, the streamed score of observation t equals
        the offline score of the window ending at t (once warm)."""

        class _WindowMean(BaseDetector):
            name = "wmean"

            def _fit(self, train):
                pass

            def score(self, series):
                # Cumulative mean of |x|: depends on the whole buffer, so
                # buffering bugs would show.
                values = np.abs(series[:, 0])
                return np.cumsum(values) / np.arange(1, values.size + 1)

        detector = _WindowMean(anomaly_ratio=5.0)
        detector.fit(rng.normal(size=(50, 1)), rng.normal(size=(100, 1)))
        stream = StreamingDetector(detector, context=8, warmup=8)
        series = rng.normal(size=(40, 1))
        events = stream.update_many(series)
        for t in range(8, 40):
            window = series[t - 7 : t + 1]
            expected = detector.score(window)[-1]
            assert events[t].score == pytest.approx(expected)

    def test_update_many_matches_serial_updates_bitwise(self, rng):
        """The vectorized batch path must be indistinguishable from the
        per-observation loop: same indices, flags, labels, and bitwise-
        equal scores — including the partially-filled-buffer windows that
        appear when warmup is shorter than the context."""
        detector = _fitted_detector(rng)
        series = rng.normal(size=(60, 1))
        batched_stream = StreamingDetector(detector, context=8, warmup=3)
        serial_stream = StreamingDetector(detector, context=8, warmup=3)
        batched = batched_stream.update_many(series)
        serial = [serial_stream.update(row) for row in series]
        assert len(batched) == len(serial)
        for batch_event, serial_event in zip(batched, serial):
            assert batch_event.index == serial_event.index
            assert batch_event.flags == serial_event.flags
            assert batch_event.is_anomaly == serial_event.is_anomaly
            if np.isnan(serial_event.score):
                assert np.isnan(batch_event.score)
            else:
                assert batch_event.score == serial_event.score
        assert batched_stream.observations_seen == serial_stream.observations_seen
        assert np.array_equal(np.stack(batched_stream._buffer),
                              np.stack(serial_stream._buffer))

    def test_update_many_matches_serial_with_tfmae(self, rng, fast_config):
        from repro.core import TFMAE

        t = np.arange(500)
        series = np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (500, 1))
        detector = TFMAE(fast_config)
        detector.fit(series[:350], series[350:450])
        tail = series[450:]
        batched = StreamingDetector(detector, context=50, warmup=10).update_many(tail)
        serial_stream = StreamingDetector(detector, context=50, warmup=10)
        serial = [serial_stream.update(row) for row in tail]
        for batch_event, serial_event in zip(batched, serial):
            if np.isnan(serial_event.score):
                assert np.isnan(batch_event.score)
            else:
                assert batch_event.score == serial_event.score
            assert batch_event.is_anomaly == serial_event.is_anomaly

    def test_update_many_split_calls_equal_one_call(self, rng):
        """Chunked ingestion hits the same state as one big batch."""
        detector = _fitted_detector(rng)
        series = rng.normal(size=(30, 1))
        one_call = StreamingDetector(detector, context=6, warmup=2).update_many(series)
        chunked_stream = StreamingDetector(detector, context=6, warmup=2)
        chunked = (chunked_stream.update_many(series[:7])
                   + chunked_stream.update_many(series[7:13])
                   + chunked_stream.update_many(series[13:]))
        for left, right in zip(one_call, chunked):
            assert left.index == right.index
            assert (np.isnan(left.score) and np.isnan(right.score)) \
                or left.score == right.score

    def test_update_many_rejects_nonfinite_before_ingesting(self, rng):
        detector = _fitted_detector(rng)
        stream = StreamingDetector(detector, context=5, warmup=0)
        series = rng.normal(size=(10, 1))
        series[4, 0] = np.nan
        with pytest.raises(ValueError, match="observation 4"):
            stream.update_many(series)
        # Fast-path validation fails before any row is ingested.
        assert stream.observations_seen == 0

    def test_update_many_with_policy_matches_serial(self, rng):
        """With a FaultPolicy the serial state machine is authoritative;
        update_many must keep producing the same flagged events."""
        from repro.robustness import FaultPolicy

        detector = _fitted_detector(rng)
        series = rng.normal(size=(40, 1))
        series[10, 0] = np.nan  # imputed by the policy
        policy = FaultPolicy(impute_nonfinite=True)
        batched = StreamingDetector(detector, context=8, warmup=3,
                                    policy=policy).update_many(series)
        serial_stream = StreamingDetector(detector, context=8, warmup=3,
                                          policy=FaultPolicy(impute_nonfinite=True))
        serial = [serial_stream.update(row) for row in series]
        for batch_event, serial_event in zip(batched, serial):
            assert batch_event.flags == serial_event.flags
            if np.isnan(serial_event.score):
                assert np.isnan(batch_event.score)
            else:
                assert batch_event.score == serial_event.score

    def test_with_tfmae(self, rng):
        """End to end with the real model: streamed spike ranks highest."""
        from repro.core import TFMAE, TFMAEConfig

        t = np.arange(600)
        series = np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (600, 1))
        config = TFMAEConfig(window_size=50, d_model=16, num_layers=1, num_heads=2,
                             anomaly_ratio=5.0, epochs=3, batch_size=8,
                             learning_rate=1e-3)
        detector = TFMAE(config)
        detector.fit(series[:400], series[400:500])

        stream = StreamingDetector(detector, context=50)
        tail = series[500:].copy()
        tail[80] += 8.0
        events = stream.update_many(tail)
        scores = np.array([event.score for event in events])
        # Warmup events carry NaN scores, so rank only the scored region.
        assert np.nanargmax(scores) == 80
