"""Streaming-detector tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector import BaseDetector
from repro.streaming import StreamingDetector


class _ThresholdOnLastValue(BaseDetector):
    """Toy detector whose score is |value| of the first feature."""

    name = "abs"

    def _fit(self, train: np.ndarray) -> None:
        pass

    def score(self, series: np.ndarray) -> np.ndarray:
        return np.abs(series[:, 0])


def _fitted_detector(rng) -> _ThresholdOnLastValue:
    detector = _ThresholdOnLastValue(anomaly_ratio=5.0)
    detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(500, 1)))
    return detector


class TestStreamingDetector:
    def test_requires_calibrated_detector(self, rng):
        detector = _ThresholdOnLastValue()
        detector.fit(rng.normal(size=(50, 1)))
        with pytest.raises(ValueError):
            StreamingDetector(detector)

    def test_invalid_context(self, rng):
        with pytest.raises(ValueError):
            StreamingDetector(_fitted_detector(rng), context=1)

    def test_warmup_period_silent(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=10)
        events = stream.update_many(rng.normal(size=(5, 1)))
        assert all(not event.is_anomaly for event in events)
        # Warmup scores are NaN (not a misleading 0.0) and flagged as such.
        assert all(np.isnan(event.score) for event in events)
        assert all("warmup" in event.flags for event in events)

    def test_indices_sequential(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=5, warmup=0)
        events = stream.update_many(rng.normal(size=(7, 1)))
        assert [event.index for event in events] == list(range(7))
        assert stream.observations_seen == 7

    def test_detects_streamed_spike(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=10, warmup=5)
        for _ in range(20):
            event = stream.update(np.array([0.1]))
            assert not event.is_anomaly
        spike = stream.update(np.array([50.0]))
        assert spike.is_anomaly
        assert spike.score == pytest.approx(50.0)

    def test_buffer_bounded(self, rng):
        stream = StreamingDetector(_fitted_detector(rng), context=4, warmup=0)
        stream.update_many(rng.normal(size=(100, 1)))
        assert len(stream._buffer) == 4

    def test_matches_offline_window_end_scores(self, rng):
        """For any detector, the streamed score of observation t equals
        the offline score of the window ending at t (once warm)."""

        class _WindowMean(BaseDetector):
            name = "wmean"

            def _fit(self, train):
                pass

            def score(self, series):
                # Cumulative mean of |x|: depends on the whole buffer, so
                # buffering bugs would show.
                values = np.abs(series[:, 0])
                return np.cumsum(values) / np.arange(1, values.size + 1)

        detector = _WindowMean(anomaly_ratio=5.0)
        detector.fit(rng.normal(size=(50, 1)), rng.normal(size=(100, 1)))
        stream = StreamingDetector(detector, context=8, warmup=8)
        series = rng.normal(size=(40, 1))
        events = stream.update_many(series)
        for t in range(8, 40):
            window = series[t - 7 : t + 1]
            expected = detector.score(window)[-1]
            assert events[t].score == pytest.approx(expected)

    def test_with_tfmae(self, rng):
        """End to end with the real model: streamed spike ranks highest."""
        from repro.core import TFMAE, TFMAEConfig

        t = np.arange(600)
        series = np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (600, 1))
        config = TFMAEConfig(window_size=50, d_model=16, num_layers=1, num_heads=2,
                             anomaly_ratio=5.0, epochs=3, batch_size=8,
                             learning_rate=1e-3)
        detector = TFMAE(config)
        detector.fit(series[:400], series[400:500])

        stream = StreamingDetector(detector, context=50)
        tail = series[500:].copy()
        tail[80] += 8.0
        events = stream.update_many(tail)
        scores = np.array([event.score for event in events])
        # Warmup events carry NaN scores, so rank only the scored region.
        assert np.nanargmax(scores) == 80
