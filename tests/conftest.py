"""Shared fixtures: deterministic RNGs, tiny datasets, fast model configs."""

from __future__ import annotations

# Lockcheck must be armed BEFORE any repro import creates a module-level
# lock, or those locks escape instrumentation (REPRO_LOCKCHECK=1 only).
from repro.analysis import lockcheck as _lockcheck

_LOCKCHECK_ON = _lockcheck.maybe_install_from_env()

import numpy as np
import pytest

from repro.core import TFMAEConfig
from repro.datasets import get_dataset, make_nips_ts_global


@pytest.fixture(scope="session", autouse=True)
def _lockcheck_session_guard():
    """With lockcheck armed, fail the session on any observed hazard.

    Every lock acquisition in every test feeds one observed lock-order
    graph; at session end a cycle or a lock-held-across-spawn event —
    even one that never actually deadlocked in this run — fails loudly.
    """
    yield
    if _LOCKCHECK_ON:
        _lockcheck.assert_clean()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_global_dataset():
    """A small NIPS-TS-Global realisation shared across the session."""
    return get_dataset("NIPS-TS-Global", seed=0, scale=0.02)


@pytest.fixture(scope="session")
def tiny_multivariate_dataset():
    """A small MSL-profile realisation (multivariate, 55 channels)."""
    return get_dataset("MSL", seed=0, scale=0.005)


@pytest.fixture
def fast_config() -> TFMAEConfig:
    """A TFMAE config small enough for sub-second training in tests."""
    return TFMAEConfig(
        window_size=50,
        d_model=16,
        num_layers=1,
        num_heads=2,
        temporal_mask_ratio=30.0,
        frequency_mask_ratio=30.0,
        anomaly_ratio=5.0,
        batch_size=8,
        epochs=1,
        learning_rate=1e-3,
    )


def numerical_gradient(fn, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued numpy function."""
    grad = np.zeros_like(x0, dtype=np.float64)
    for index in np.ndindex(*x0.shape):
        plus = x0.copy()
        plus[index] += eps
        minus = x0.copy()
        minus[index] -= eps
        grad[index] = (fn(plus) - fn(minus)) / (2.0 * eps)
    return grad
