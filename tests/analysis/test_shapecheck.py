"""The abstract graph checker: seeded defects must be named precisely.

Two deliberately broken modules carry the acceptance-criteria defects —
a broadcast bug and a dtype-mix bug — and the checker must name the
culpable op for each; a third severs grad flow with a hidden detach.
"""

from __future__ import annotations

import copy
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (
    ShapeCheckError,
    check_grad_flow,
    preflight_model,
    trace,
)
from repro.core.config import TFMAEConfig
from repro.core.model import TFMAEModel
from repro.nn import Module, Parameter, Tensor


class BrokenBroadcast(Module):
    """Projects (B, 5) inputs through a (4, 3) weight — shapes cannot meet."""

    def __init__(self, rng):
        super().__init__()
        self.weight = Parameter(rng.normal(size=(4, 3)), name="weight")

    def forward(self, x: np.ndarray) -> Tensor:
        return Tensor(x) @ self.weight


class BrokenDtypeMix(Module):
    """Feeds a float32 tensor into an op against a float64 tensor."""

    def __init__(self, rng):
        super().__init__()
        self.weight = Parameter(rng.normal(size=(5,)), name="weight")

    def forward(self, x: np.ndarray) -> Tensor:
        # Bypasses the nn.dtype policy deliberately: an explicit dtype pin
        # on one operand but not the other.
        lhs = Tensor(x, dtype=np.float32)
        return (lhs * self.weight).sum()


class BrokenGradFlow(Module):
    """Hidden detach: the loss never reaches the second parameter."""

    def __init__(self, rng):
        super().__init__()
        self.used = Parameter(rng.normal(size=(5,)), name="used")
        self.orphan = Parameter(rng.normal(size=(5,)), name="orphan")

    def forward(self, x: np.ndarray) -> Tensor:
        live = (Tensor(x) * self.used).sum()
        severed = Tensor(self.orphan.data * 2.0)  # repro: noqa[DET001] — the seeded defect under test
        return live + severed.sum()


class TestSeededDefects:
    def test_broadcast_bug_names_matmul(self, rng):
        model = BrokenBroadcast(rng)
        with pytest.raises(ShapeCheckError) as excinfo:
            trace(model, rng.normal(size=(2, 5)))
        issues = excinfo.value.issues
        assert any(i.kind == "broadcast" and i.op == "matmul" for i in issues)

    def test_dtype_mix_bug_names_mul(self, rng):
        model = BrokenDtypeMix(rng)
        _, report = trace(model, rng.normal(size=(5,)))
        mix = [i for i in report.issues if i.kind == "dtype_mix"]
        assert len(mix) == 1
        assert mix[0].op == "mul"
        assert "float32" in mix[0].message and "float64" in mix[0].message
        with pytest.raises(ShapeCheckError):
            report.raise_if_issues()

    def test_grad_flow_break_names_parameter(self, rng):
        model = BrokenGradFlow(rng)
        loss, report = trace(model, rng.normal(size=(5,)))
        check_grad_flow(loss, model.named_parameters(), report)
        broken = [i for i in report.issues if i.kind == "grad_flow"]
        assert [i.op for i in broken] == ["orphan"]

    def test_loss_without_grad_flagged(self, rng):
        loss = Tensor(np.array(1.5))
        report = check_grad_flow(loss, [])
        assert [i.kind for i in report.issues] == ["loss_no_grad"]


class TestCleanTrace:
    def test_clean_module_passes(self, rng):
        model = BrokenBroadcast(rng)
        loss, report = trace(lambda x: (Tensor(x) @ model.weight).sum(),
                             rng.normal(size=(2, 4)))
        check_grad_flow(loss, model.named_parameters(), report)
        assert report.ok
        assert report.records  # the dispatch really was traced
        assert {r.op for r in report.records} >= {"matmul", "sum"}

    def test_records_carry_shapes_and_dtypes(self, rng):
        _, report = trace(lambda x: Tensor(x).sum(), rng.normal(size=(3, 2)))
        record = report.records[-1]
        assert record.op == "sum"
        assert record.input_shapes == ((3, 2),)
        assert record.output_dtype == "float64"


class TestPreflight:
    def test_tfmae_default_config_is_clean(self, fast_config):
        model = TFMAEModel(n_features=3, config=fast_config)
        report = preflight_model(model)
        assert report.ok and report.records

    def test_tfmae_float32_policy_is_clean(self, fast_config):
        config = fast_config.with_overrides(compute_dtype="float32")
        model = TFMAEModel(n_features=3, config=config)
        assert preflight_model(model).ok

    def test_preflight_restores_rng_state(self, fast_config):
        """Tracing must not perturb the training trajectory."""
        model = TFMAEModel(n_features=3, config=fast_config)
        before = copy.deepcopy(model.temporal.masker.rng.bit_generator.state)
        preflight_model(model)
        after = model.temporal.masker.rng.bit_generator.state
        assert before == after

    def test_preflight_flags_broken_model(self, rng):
        inner = BrokenBroadcast(rng)
        model = SimpleNamespace(
            config=SimpleNamespace(window_size=5),
            n_features=1,
            loss=lambda windows: (inner(windows[:, :, 0]).sum(), {}),
            named_parameters=inner.named_parameters,
        )
        with pytest.raises(ShapeCheckError, match="matmul"):
            preflight_model(model)
