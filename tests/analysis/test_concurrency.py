"""The interprocedural concurrency pass: LOCK002, BLK001, TLS001.

Each rule gets a positive (fires on the seeded pattern), a negative
(stays silent on the disciplined version), and a noqa case (per-line
suppression works).  Fixtures are synthetic trees under ``tmp_path`` so
the assertions are about the analyzer, not the shipped code — the
shipped tree's cleanliness is asserted in ``test_meta.py``.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_concurrency, lock_graph_summary


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def _codes(violations):
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# LOCK002 — lock-order inversion
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_inverted_order_in_one_module_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def forward():
                with A:
                    with B:
                        pass

            def backward():
                with B:
                    with A:
                        pass
        """)
        violations = analyze_concurrency([str(tmp_path)])
        assert "LOCK002" in _codes(violations)
        # both inversion sites report, naming the cycle
        messages = [v.message for v in violations if v.rule == "LOCK002"]
        assert len(messages) == 2
        assert all("cycle" in message for message in messages)

    def test_consistent_order_is_clean(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def forward():
                with A:
                    with B:
                        pass

            def also_forward():
                with A:
                    with B:
                        pass
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_cycle_through_a_callee_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def takes_b():
                with B:
                    pass

            def outer():
                with A:
                    takes_b()

            def inverted():
                with B:
                    with A:
                        pass
        """)
        violations = analyze_concurrency([str(tmp_path)])
        assert "LOCK002" in _codes(violations)

    def test_reentrant_same_lock_is_not_a_cycle(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            A = threading.RLock()

            def nested():
                with A:
                    with A:
                        pass
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_noqa_suppresses_lock002(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def forward():
                with A:
                    with B:  # repro: noqa[LOCK002]
                        pass

            def backward():
                with B:
                    with A:  # repro: noqa[LOCK002]
                        pass
        """)
        assert analyze_concurrency([str(tmp_path)]) == []


# ----------------------------------------------------------------------
# BLK001 — blocking call under a lock
# ----------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading
            import time

            L = threading.Lock()

            def hold_and_sleep():
                with L:
                    time.sleep(0.5)
        """)
        violations = analyze_concurrency([str(tmp_path)])
        assert _codes(violations) == ["BLK001"]
        assert "time.sleep" in violations[0].message

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading
            import time

            L = threading.Lock()

            def disciplined():
                with L:
                    value = 1
                time.sleep(0.5)
                return value
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_transitive_blocking_through_callee_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading
            import time

            L = threading.Lock()

            def slow_helper():
                time.sleep(0.5)

            def hold_and_call():
                with L:
                    slow_helper()
        """)
        violations = analyze_concurrency([str(tmp_path)])
        assert _codes(violations) == ["BLK001"]
        assert "slow_helper" in violations[0].message

    def test_blocking_ok_lock_is_exempt(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import time

            from repro.analysis.lockcheck import named_lock

            SEND = named_lock("test.send", blocking_ok=True)

            def serialised_io():
                with SEND:
                    time.sleep(0.5)
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_file_io_under_lock_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            L = threading.Lock()

            def hold_and_read(path):
                with L:
                    with open(path) as handle:
                        return handle.read()
        """)
        assert "BLK001" in _codes(analyze_concurrency([str(tmp_path)]))

    def test_noqa_suppresses_blk001(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading
            import time

            L = threading.Lock()

            def justified():
                with L:
                    time.sleep(0.5)  # repro: noqa[BLK001]
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_condition_wait_on_own_lock_is_exempt(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            COND = threading.Condition()

            def waiter():
                with COND:
                    COND.wait(1.0)
        """)
        assert analyze_concurrency([str(tmp_path)]) == []


# ----------------------------------------------------------------------
# TLS001 — thread-local policy discipline
# ----------------------------------------------------------------------
class TestThreadLocalPolicy:
    def test_bare_use_expression_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            from repro.nn.fused import use_fused

            def misuse():
                use_fused(True)
        """)
        violations = analyze_concurrency([str(tmp_path)])
        assert _codes(violations) == ["TLS001"]

    def test_with_use_is_clean(self, tmp_path):
        _write(tmp_path, "mod.py", """
            from repro.nn.fused import use_fused

            def disciplined():
                with use_fused(True):
                    pass
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_with_setter_fires(self, tmp_path):
        _write(tmp_path, "mod.py", """
            from repro.nn.fused import set_fused

            def misuse():
                with set_fused(True):
                    pass
        """)
        assert _codes(analyze_concurrency([str(tmp_path)])) == ["TLS001"]

    def test_setter_in_serving_path_fires(self, tmp_path):
        serve_dir = tmp_path / "serve"
        serve_dir.mkdir()
        (serve_dir / "__init__.py").write_text("")
        _write(serve_dir, "handler.py", """
            from repro.nn.fused import set_fused

            def handle(request):
                set_fused(True)
        """)
        assert "TLS001" in _codes(analyze_concurrency([str(tmp_path)]))

    def test_setter_outside_serving_is_clean(self, tmp_path):
        _write(tmp_path, "script.py", """
            from repro.nn.fused import set_fused

            def configure():
                set_fused(True)
        """)
        assert analyze_concurrency([str(tmp_path)]) == []

    def test_noqa_suppresses_tls001(self, tmp_path):
        _write(tmp_path, "mod.py", """
            from repro.nn.fused import use_fused

            def justified():
                use_fused(True)  # repro: noqa[TLS001]
        """)
        assert analyze_concurrency([str(tmp_path)]) == []


# ----------------------------------------------------------------------
# lock graph summary
# ----------------------------------------------------------------------
class TestLockGraphSummary:
    def test_summary_shape(self, tmp_path):
        _write(tmp_path, "mod.py", """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def forward():
                with A:
                    with B:
                        pass
        """)
        summary = lock_graph_summary([str(tmp_path)])
        assert sorted(summary) == ["cycles", "edges", "locks"]
        assert any(lock.endswith(".A") for lock in summary["locks"])
        assert len(summary["edges"]) == 1
        edge = summary["edges"][0]
        assert edge["from"].endswith(".A") and edge["to"].endswith(".B")
        assert edge["sites"][0]["line"] > 0
        assert summary["cycles"] == []

    def test_shipped_tree_has_acyclic_graph(self):
        from pathlib import Path

        import repro

        summary = lock_graph_summary([str(Path(repro.__file__).parent)])
        assert summary["cycles"] == []
        # The documented registry order is part of the shipped graph.
        pairs = {(edge["from"], edge["to"]) for edge in summary["edges"]}
        assert ("serve.registry.per-model", "serve.registry.state") in pairs
