"""Runtime lockcheck: observed edges, cycles, spawn hazards, hold times.

The checker keeps one process-wide graph, and the suite may already be
running with it armed (``REPRO_LOCKCHECK=1``); every test here snapshots
and restores that state so intentionally-seeded hazards never leak into
the session-teardown ``assert_clean``.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockcheck


@pytest.fixture
def armed():
    """Lockcheck installed, with the pre-test graph saved and restored."""
    was_installed = lockcheck.installed()
    state = lockcheck._STATE
    with state.lock:
        saved_edges = dict(state.edges)
        saved_spawn = list(state.spawn_violations)
    lockcheck.install()
    try:
        yield
    finally:
        with state.lock:
            state.edges.clear()
            state.edges.update(saved_edges)
            state.spawn_violations[:] = saved_spawn
        if not was_installed:
            lockcheck.uninstall()


def test_named_lock_is_plain_primitive_when_not_installed():
    if lockcheck.installed():
        pytest.skip("suite runs with lockcheck armed")
    lock = lockcheck.named_lock("test.plain")
    assert type(lock) is type(threading.Lock())


def test_install_patches_threading_factories(armed):
    lock = threading.Lock()
    assert isinstance(lock, lockcheck._TrackedLock)
    assert lockcheck.installed()


def test_nested_acquisition_records_an_edge(armed):
    a = lockcheck.named_lock("test.edge.a")
    b = lockcheck.named_lock("test.edge.b")
    with a:
        assert lockcheck.held_locks() == ["test.edge.a"]
        with b:
            assert lockcheck.held_locks() == ["test.edge.a", "test.edge.b"]
    assert lockcheck.held_locks() == []
    edges = lockcheck.observed_edges()
    assert ("test.edge.a", "test.edge.b") in edges
    example = edges[("test.edge.a", "test.edge.b")]
    assert example["count"] >= 1
    assert "test_lockcheck" in example["acquired_at"]


def test_inverted_orders_become_a_cycle(armed):
    a = lockcheck.named_lock("test.cycle.a")
    b = lockcheck.named_lock("test.cycle.b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    cycles = lockcheck.find_cycles()
    assert ["test.cycle.a", "test.cycle.b"] in cycles
    with pytest.raises(lockcheck.LockOrderError, match="cycle"):
        lockcheck.assert_clean()


def test_rlock_reentrancy_is_not_an_edge(armed):
    a = lockcheck.named_lock("test.rlock", kind="rlock")
    with a:
        with a:
            assert lockcheck.held_locks() == ["test.rlock"]
    assert lockcheck.held_locks() == []
    assert ("test.rlock", "test.rlock") not in lockcheck.observed_edges()


def test_same_name_locks_do_not_self_edge(armed):
    first = lockcheck.named_lock("test.same")
    second = lockcheck.named_lock("test.same")
    with first:
        with second:
            pass
    assert ("test.same", "test.same") not in lockcheck.observed_edges()
    assert lockcheck.find_cycles() == []


def test_condition_wait_releases_the_held_stack(armed):
    cond = lockcheck.named_lock("test.cond", kind="condition")
    observed = []

    def waiter():
        with cond:
            cond.wait(timeout=5.0)
            observed.append(lockcheck.held_locks())

    thread = threading.Thread(target=waiter)
    thread.start()
    # Let the waiter release the lock inside wait(); if the stack were
    # stale this acquire would record a bogus self-edge.
    with cond:
        cond.notify_all()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert observed == [["test.cond"]]
    assert lockcheck.find_cycles() == []


def test_check_spawn_records_held_locks(armed):
    a = lockcheck.named_lock("test.spawn.guard")
    assert lockcheck.check_spawn("unlocked") is True
    with a:
        assert lockcheck.check_spawn("worker-3") is False
    violations = lockcheck.spawn_violations()
    assert violations[-1]["context"] == "worker-3"
    assert violations[-1]["held"] == ["test.spawn.guard"]
    with pytest.raises(lockcheck.LockOrderError, match="spawn"):
        lockcheck.assert_clean()


def test_hold_time_histogram_is_recorded(armed):
    lock = lockcheck.named_lock("test.holdtime")
    with lock:
        pass
    text = lockcheck.metrics().render_text()
    assert "lockcheck_hold_seconds" in text
    assert "test.holdtime" in text


def test_report_is_json_shaped(armed):
    a = lockcheck.named_lock("test.report.a")
    b = lockcheck.named_lock("test.report.b")
    with a:
        with b:
            pass
    report = lockcheck.report()
    assert report["installed"] is True
    assert "test.report.a" in report["locks"]
    assert any(edge["from"] == "test.report.a" and edge["to"] == "test.report.b"
               for edge in report["edges"])
    assert isinstance(report["cycles"], list)
    assert isinstance(report["spawn_violations"], list)


def test_try_acquire_failure_records_nothing(armed):
    lock = lockcheck.named_lock("test.tryfail")
    with lock:
        grabbed = []

        def contender():
            grabbed.append(lock.acquire(blocking=False))

        thread = threading.Thread(target=contender)
        thread.start()
        thread.join(timeout=5.0)
    assert grabbed == [False]
    assert lock.acquire(blocking=False) is True
    lock.release()
    assert lockcheck.held_locks() == []
