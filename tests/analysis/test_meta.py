"""Meta-test: the shipped tree stays lint- and shapecheck-clean forever.

Runs the real CLI entry point (`python -m repro analyze --all`) in-process
so any new violation in ``src/repro`` — or a shape/dtype/grad-flow break
in any shipped model variant — fails the default test suite, not just a
manual lint run.  Deliberately NOT marked slow.
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.analysis import lint_paths
from repro.cli import main


def test_analyze_all_runs_clean(capsys):
    assert main(["analyze", "--all"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "FAILED" not in out
    # every shipped graph variant was actually traced
    for variant in ("default", "float32", "temporal-only",
                    "frequency-only", "non-adversarial"):
        assert f"shapecheck {variant}" in out


def test_tree_has_no_lint_violations():
    package_root = Path(repro.__file__).parent
    violations = lint_paths([str(package_root)])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_cli_json_output_is_parseable(capsys):
    assert main(["analyze", "lint", "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nx = np.random.normal()\n")
    assert main(["analyze", "lint", "--path", str(dirty)]) == 1
    assert "RNG001" in capsys.readouterr().out
