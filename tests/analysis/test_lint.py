"""Per-rule linter tests: positive, negative, and noqa for every rule."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import format_json, format_text, lint_source


def _lint(code: str, path: str = "src/repro/example.py"):
    return lint_source(textwrap.dedent(code), path)


def _codes(violations):
    return [violation.rule for violation in violations]


class TestRNG001:
    def test_legacy_global_flagged(self):
        violations = _lint("""
            import numpy as np
            x = np.random.normal(size=3)
        """)
        assert _codes(violations) == ["RNG001"]
        assert "np.random.normal" in violations[0].message

    def test_unseeded_default_rng_flagged(self):
        assert _codes(_lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)) == ["RNG001"]

    def test_seeded_generator_clean(self):
        assert _lint("""
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.normal(size=3)
            other = np.random.Generator(np.random.PCG64(7))
        """) == []

    def test_noqa_suppresses(self):
        assert _lint("""
            import numpy as np
            rng = np.random.default_rng()  # repro: noqa[RNG001]
        """) == []


class TestMUT001:
    def test_subscript_assignment_flagged(self):
        assert _codes(_lint("""
            def f(t, x):
                t.data[0] = x
        """)) == ["MUT001"]

    def test_augmented_assignment_flagged(self):
        assert _codes(_lint("""
            def f(t, x):
                t.data += x
        """)) == ["MUT001"]

    def test_mutating_method_flagged(self):
        assert _codes(_lint("""
            def f(t):
                t.data.fill(0.0)
        """)) == ["MUT001"]

    def test_rebinding_clean(self):
        assert _lint("""
            def f(t, x):
                t.data = t.data - x
                value = t.data[0]
                t.grad.fill(0.0)
        """) == []

    def test_noqa_suppresses(self):
        assert _lint("""
            def f(t, x):
                t.data += x  # repro: noqa[MUT001]
        """) == []


class TestLOCK001:
    def test_unlocked_module_dict_flagged(self):
        violations = _lint("""
            _REGISTRY = {}
        """, path="src/repro/serve/example.py")
        assert _codes(violations) == ["LOCK001"]
        assert "_REGISTRY" in violations[0].message

    def test_lock_in_module_clean(self):
        assert _lint("""
            import threading
            _REGISTRY = {}
            _REGISTRY_LOCK = threading.Lock()
        """, path="src/repro/serve/example.py") == []

    def test_outside_threaded_scope_clean(self):
        assert _lint("_REGISTRY = {}", path="src/repro/metrics/example.py") == []

    def test_dunder_metadata_clean(self):
        assert _lint(
            '__all__ = ["a", "b"]', path="src/repro/serve/example.py"
        ) == []

    def test_streaming_module_in_scope(self):
        assert _codes(_lint(
            "_STATE = []", path="src/repro/streaming.py"
        )) == ["LOCK001"]

    def test_noqa_suppresses(self):
        assert _lint("""
            _REGISTRY = {}  # repro: noqa[LOCK001]
        """, path="src/repro/serve/example.py") == []


class TestEXC001:
    def test_bare_except_flagged(self):
        assert _codes(_lint("""
            def f():
                try:
                    pass
                except:
                    pass
        """)) == ["EXC001"]

    def test_typed_except_clean(self):
        assert _lint("""
            def f():
                try:
                    pass
                except ValueError:
                    pass
        """) == []

    def test_noqa_suppresses(self):
        assert _lint("""
            def f():
                try:
                    pass
                except:  # repro: noqa[EXC001]
                    pass
        """) == []


class TestDET001:
    def test_tensor_of_data_flagged(self):
        assert _codes(_lint("""
            def f(t):
                return Tensor(t.data * 2.0)
        """)) == ["DET001"]

    def test_as_tensor_of_data_flagged(self):
        assert _codes(_lint("""
            def f(t):
                return as_tensor(t.data)
        """)) == ["DET001"]

    def test_detach_function_whitelisted(self):
        assert _lint("""
            def detach(t):
                return Tensor(t.data)
        """) == []

    def test_plain_data_read_clean(self):
        assert _lint("""
            def f(t):
                return float(t.data.sum())
        """) == []

    def test_noqa_suppresses(self):
        assert _lint("""
            def f(t):
                return Tensor(t.data * 2.0)  # repro: noqa[DET001]
        """) == []


class TestF64001:
    def test_astype_flagged_in_scope(self):
        assert _codes(_lint("""
            import numpy as np
            def f(x):
                return x.astype(np.float64)
        """, path="src/repro/nn/functional.py")) == ["F64001"]

    def test_dtype_keyword_flagged_in_scope(self):
        assert _codes(_lint("""
            import numpy as np
            def f(n):
                return np.zeros(n, dtype=np.float64)
        """, path="src/repro/core/model.py")) == ["F64001"]

    def test_comparison_clean(self):
        assert _lint("""
            import numpy as np
            def f(x):
                return x.dtype == np.float64
        """, path="src/repro/nn/functional.py") == []

    def test_out_of_scope_clean(self):
        assert _lint("""
            import numpy as np
            def f(x):
                return x.astype(np.float64)
        """, path="src/repro/masking/frequency.py") == []

    def test_noqa_suppresses(self):
        assert _lint("""
            import numpy as np
            def f(x):
                return x.astype(np.float64)  # repro: noqa[F64001]
        """, path="src/repro/nn/functional.py") == []


class TestJIT001:
    def test_tensor_in_jit_module_flagged(self):
        assert _codes(_lint("""
            def replay(slots):
                return Tensor(slots["x"])
        """, path="src/repro/nn/jit.py")) == ["JIT001"]

    def test_as_tensor_in_jit_module_flagged(self):
        assert _codes(_lint("""
            def trace(fn, x):
                return as_tensor(x)
        """, path="src/repro/nn/jit.py")) == ["JIT001"]

    def test_other_modules_out_of_scope(self):
        assert _lint("""
            def f(x):
                return Tensor(x)
        """, path="src/repro/nn/functional.py") == []

    def test_raw_numpy_clean(self):
        assert _lint("""
            import numpy as np
            def replay(slots):
                return np.add(slots["a"], slots["b"])
        """, path="src/repro/nn/jit.py") == []

    def test_noqa_suppresses(self):
        assert _lint("""
            def replay(slots):
                return Tensor(slots["x"])  # repro: noqa[JIT001]
        """, path="src/repro/nn/jit.py") == []


class TestReporters:
    def test_text_report_lists_locations(self):
        violations = _lint("""
            import numpy as np
            x = np.random.normal(size=3)
        """)
        text = format_text(violations)
        assert "RNG001" in text and "example.py:3" in text
        assert "1 violation(s)" in text

    def test_text_report_clean(self):
        assert format_text([]) == "clean"

    def test_json_report_round_trips(self):
        import json

        violations = _lint("""
            import numpy as np
            x = np.random.normal(size=3)
        """)
        payload = json.loads(format_json(violations))
        assert payload[0]["rule"] == "RNG001"
        assert payload[0]["line"] == 3

    def test_multiple_codes_in_one_noqa(self):
        assert _lint("""
            import numpy as np
            x = np.random.normal(np.random.default_rng())  # repro: noqa[RNG001, MUT001]
        """) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        assert _codes(_lint("""
            import numpy as np
            x = np.random.normal(size=3)  # repro: noqa[MUT001]
        """)) == ["RNG001"]
