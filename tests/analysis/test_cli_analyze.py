"""``python -m repro analyze`` contract: exit codes, JSON schema, warnings.

The CI lint gate shells out to this command, so its exit codes and its
``--json`` schema (a bare list of violation objects) are load-bearing.
"""

from __future__ import annotations

import json
import textwrap

from repro.cli import main


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


_INVERTED = """
    import threading

    A = threading.Lock()
    B = threading.Lock()

    def forward():
        with A:
            with B:
                pass

    def backward():
        with B:
            with A:
                pass
"""


class TestConcurrencyCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", """
            import threading

            L = threading.Lock()

            def fine():
                with L:
                    return 1
        """)
        assert main(["analyze", "concurrency", "--path", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", _INVERTED)
        assert main(["analyze", "concurrency", "--path", str(tmp_path)]) == 1
        assert "LOCK002" in capsys.readouterr().out

    def test_json_schema_is_a_list_of_violation_objects(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", _INVERTED)
        assert main(["analyze", "concurrency", "--json",
                     "--path", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload
        for entry in payload:
            assert set(entry) == {"rule", "path", "line", "col", "message"}
            assert entry["rule"] == "LOCK002"

    def test_shipped_tree_is_clean(self, capsys):
        assert main(["analyze", "concurrency"]) == 0
        assert "clean" in capsys.readouterr().out


class TestAllSweep:
    def test_all_includes_concurrency_findings(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", _INVERTED)
        assert main(["analyze", "--all", "--path", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "LOCK002" in out
        assert "shapecheck default" in out  # the sweep still ran shapecheck

    def test_all_merges_lint_and_concurrency_sorted(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", """
            import threading
            import time

            import numpy as np

            L = threading.Lock()

            def noisy():
                x = np.random.normal()
                with L:
                    time.sleep(0.5)
                return x
        """)
        assert main(["analyze", "--all", "--path", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "BLK001" in out
        # one merged, location-sorted report: RNG001 (line 9) first
        assert out.index("RNG001") < out.index("BLK001")


class TestStaleSuppressions:
    def test_stale_noqa_warns_without_failing(self, tmp_path, capsys):
        _write(tmp_path, "stale.py", """
            def fine():
                return 1  # repro: noqa[RNG001]
        """)
        assert main(["analyze", "lint", "--path", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stale suppression" in out
        assert "noqa[RNG001]" in out

    def test_live_noqa_does_not_warn(self, tmp_path, capsys):
        _write(tmp_path, "live.py", """
            import numpy as np

            def seeded_elsewhere():
                return np.random.normal()  # repro: noqa[RNG001]
        """)
        assert main(["analyze", "lint", "--path", str(tmp_path)]) == 0
        assert "stale suppression" not in capsys.readouterr().out

    def test_unknown_code_warns(self, tmp_path, capsys):
        _write(tmp_path, "typo.py", """
            def fine():
                return 1  # repro: noqa[NOPE999]
        """)
        assert main(["analyze", "lint", "--path", str(tmp_path)]) == 0
        assert "noqa[NOPE999]" in capsys.readouterr().out

    def test_concurrency_noqa_is_not_stale_when_rule_fires(self, tmp_path, capsys):
        _write(tmp_path, "suppressed.py", """
            import threading
            import time

            L = threading.Lock()

            def justified():
                with L:
                    time.sleep(0.5)  # repro: noqa[BLK001]
        """)
        # lint alone cannot see BLK001 hits; the stale check must pull in
        # the concurrency pass's raw findings before deciding.
        assert main(["analyze", "lint", "--path", str(tmp_path)]) == 0
        assert "stale suppression" not in capsys.readouterr().out

    def test_json_mode_keeps_stdout_parseable(self, tmp_path, capsys):
        _write(tmp_path, "stale.py", """
            def fine():
                return 1  # repro: noqa[RNG001]
        """)
        assert main(["analyze", "lint", "--json", "--path", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out) == []
        assert "stale suppression" in captured.err

    def test_docstring_mention_of_noqa_is_not_a_suppression(self, tmp_path, capsys):
        _write(tmp_path, "docs.py", '''
            """Suppress with ``# repro: noqa[RNG001]`` plus a justification."""

            def fine():
                return 1
        ''')
        assert main(["analyze", "lint", "--path", str(tmp_path)]) == 0
        assert "stale suppression" not in capsys.readouterr().out
