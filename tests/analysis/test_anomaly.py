"""detect_anomaly: the first NaN/Inf is attributed to the op that made it.

The acceptance-criteria defect — a NaN injected so it only appears in the
*backward* of the fused attention kernel — must be pinned to
``fused_attention`` with its creation site, not to a downstream consumer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AnomalyError, detect_anomaly
from repro.core.config import TFMAEConfig
from repro.core.model import TFMAEModel
from repro.core.trainer import TFMAETrainer
from repro.nn import Tensor, fused
from repro.robustness import DivergenceGuard, TrainingDivergedError


class TestForward:
    def test_pinpoints_nan_forward_op(self):
        with np.errstate(all="ignore"):
            with pytest.raises(AnomalyError) as excinfo:
                with detect_anomaly():
                    x = Tensor(np.array([1.0, 0.0, 2.0]), requires_grad=True)
                    x.log()  # log(0) = -inf
        error = excinfo.value
        assert error.op == "log"
        assert error.phase == "forward"
        assert "inf=1" in error.stats
        assert "test_anomaly" in str(error)  # creation site names this file

    def test_clean_graph_passes(self):
        with detect_anomaly():
            x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            loss = (x * x).sum()
            loss.backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0])

    def test_hook_removed_after_exit(self):
        with detect_anomaly():
            pass
        # Outside the context a NaN passes silently again.
        with np.errstate(all="ignore"):
            Tensor(np.array([0.0]), requires_grad=True).log()


class TestBackward:
    def test_injected_nan_in_fused_attention_backward(self, rng):
        """Finite forward, poisoned seed gradient: the overflow is born in
        fused_attention's backward and must be attributed to it."""
        shape = (1, 1, 3, 2)
        q = Tensor(rng.normal(size=shape), requires_grad=True)
        k = Tensor(rng.normal(size=shape), requires_grad=True)
        v = Tensor(rng.normal(size=shape), requires_grad=True)
        with np.errstate(all="ignore"):
            with pytest.raises(AnomalyError) as excinfo:
                with detect_anomaly():
                    context, _ = fused.scaled_dot_product_attention(
                        q, k, v, scale=0.6
                    )
                    assert np.all(np.isfinite(context.data))  # forward is clean
                    context.backward(np.full(shape, 1e308))
        error = excinfo.value
        assert error.op == "fused_attention"
        assert error.phase == "backward"
        assert "fused" in str(error)  # creation site points into fused.py

    def test_backward_only_mode_skips_forward_checks(self):
        with np.errstate(all="ignore"):
            with detect_anomaly(check_forward=False):
                bad = Tensor(np.array([0.0]), requires_grad=True).log()
            assert np.isneginf(bad.data[0])  # forward NaN tolerated


class TestGuardIntegration:
    def test_report_anomaly_names_the_op(self):
        guard = DivergenceGuard()
        error = AnomalyError("fused_attention", "backward", "nan=3", site=None)
        report = guard.report_anomaly(error)
        assert report.reason == "anomaly"
        assert "fused_attention" in report.detail
        assert "backward" in report.detail

    def test_trainer_rollback_reports_culpable_op(self, fast_config, rng):
        """A poisoned loss under detect_anomaly=True rolls back with the op
        named, and exhausting retries surfaces it in the final error."""
        config = fast_config.with_overrides(
            detect_anomaly=True, max_divergence_retries=1, preflight=False,
        )
        model = TFMAEModel(n_features=2, config=config)
        real_loss = model.loss

        def poisoned(windows):
            loss, metrics = real_loss(windows)
            return loss * Tensor(np.array(np.inf)), metrics

        model.loss = poisoned
        trainer = TFMAETrainer(model, config)
        series = rng.normal(size=(3 * config.window_size, 2))
        with np.errstate(all="ignore"):
            with pytest.raises(TrainingDivergedError) as excinfo:
                trainer.fit(series, verbose=False)
        assert "anomaly" in str(excinfo.value)
        assert "'mul'" in str(excinfo.value)
        assert all(reason == "anomaly" for _, reason in trainer.log.rollbacks)
