"""ASCII visualisation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz import render_detection, render_series, sparkline


class TestSparkline:
    def test_width(self, rng):
        assert len(sparkline(rng.normal(size=200), width=40)) == 40

    def test_constant_series(self):
        line = sparkline(np.ones(50), width=20)
        assert line == " " * 20

    def test_extremes_use_extreme_glyphs(self):
        values = np.zeros(80)
        values[40] = 10.0
        line = sparkline(values, width=80)
        assert line[40] == "@"
        assert line[0] == " "

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))

    def test_width_property(self, rng):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(length=st.integers(1, 500), width=st.integers(1, 120))
        @settings(max_examples=40, deadline=None)
        def check(length, width):
            values = np.random.default_rng(length).normal(size=length)
            assert len(sparkline(values, width=width)) == width

        check()


class TestRenderSeries:
    def test_dimensions(self, rng):
        text = render_series(rng.normal(size=300), height=6, width=50)
        lines = text.split("\n")
        assert len(lines) == 6
        assert all(len(line) >= 50 for line in lines)

    def test_annotates_min_max(self):
        text = render_series(np.linspace(0.0, 5.0, 100))
        assert "5" in text.split("\n")[0]
        assert "0" in text.split("\n")[-1]

    def test_one_mark_per_column(self, rng):
        text = render_series(rng.normal(size=100), height=5, width=30)
        grid = [line[:30] for line in text.split("\n")]
        for column in range(30):
            marks = sum(1 for row in grid if row[column] == "*")
            assert marks == 1


class TestRenderDetection:
    def test_rows_and_markers(self, rng):
        channel = rng.normal(size=100)
        scores = np.zeros(100)
        scores[50] = 5.0
        labels = np.zeros(100, dtype=int)
        labels[50] = 1
        text = render_detection(channel, scores, threshold=1.0, labels=labels, width=100)
        lines = text.split("\n")
        assert len(lines) == 4
        assert "!" in lines[2]
        assert "#" in lines[3]

    def test_no_labels_row(self, rng):
        text = render_detection(rng.normal(size=50), np.zeros(50), threshold=1.0)
        assert len(text.split("\n")) == 3

    def test_alignment_required(self, rng):
        with pytest.raises(ValueError):
            render_detection(rng.normal(size=50), np.zeros(40), threshold=1.0)
