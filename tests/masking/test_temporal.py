"""Window-based temporal masking tests (paper Eq. 1-5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.masking import (
    TemporalMasker,
    coefficient_of_variation_fft,
    coefficient_of_variation_naive,
    rolling_std,
    top_indices,
)


class TestCoefficientOfVariation:
    def test_fft_matches_naive_2d(self, rng):
        series = rng.normal(size=(80, 3))
        naive = coefficient_of_variation_naive(series, window=10)
        fast = coefficient_of_variation_fft(series, window=10)
        np.testing.assert_allclose(fast, naive, atol=1e-8)

    def test_fft_matches_naive_batched(self, rng):
        series = rng.normal(size=(4, 60, 2))
        naive = coefficient_of_variation_naive(series, window=7)
        fast = coefficient_of_variation_fft(series, window=7)
        assert fast.shape == (4, 60)
        np.testing.assert_allclose(fast, naive, atol=1e-8)

    @given(
        window=st.integers(1, 15),
        length=st.integers(16, 60),
        features=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, window, length, features, seed):
        """The FFT form (Eq. 4-5) equals the loop form (Eq. 1) everywhere."""
        series = np.random.default_rng(seed).normal(size=(length, features))
        naive = coefficient_of_variation_naive(series, window)
        fast = coefficient_of_variation_fft(series, window)
        np.testing.assert_allclose(fast, naive, atol=1e-6)

    def test_window_one_is_zero(self, rng):
        series = rng.normal(size=(20, 2))
        np.testing.assert_array_equal(coefficient_of_variation_fft(series, 1), 0.0)

    def test_spike_raises_statistic(self, rng):
        series = np.zeros((100, 1)) + 1.0 + rng.normal(0, 0.01, size=(100, 1))
        series[50, 0] = 10.0
        stat = coefficient_of_variation_fft(series, window=10)
        # Positions whose window covers the spike dominate.
        assert stat[50:60].max() > 10 * np.delete(stat, np.s_[50:60]).max()

    def test_scale_invariance(self, rng):
        """CoV (variance over mean) shifts the statistic predictably under
        scaling, unlike raw std — masking picks the same indices."""
        series = rng.uniform(1.0, 2.0, size=(64, 1))
        small = coefficient_of_variation_fft(series, 8)
        large = coefficient_of_variation_fft(series * 1000.0, 8)
        np.testing.assert_array_equal(np.argsort(small), np.argsort(large))

    def test_invalid_window(self, rng):
        with pytest.raises(ValueError):
            coefficient_of_variation_naive(rng.normal(size=(10, 1)), 0)


class TestRollingStd:
    def test_matches_numpy_on_interior(self, rng):
        series = rng.normal(size=(50, 1))
        stat = rolling_std(series, window=5)
        for t in range(4, 50):
            expected = series[t - 4 : t + 1, 0].std(ddof=1)
            assert stat[t] == pytest.approx(expected, abs=1e-8)

    def test_not_scale_invariant(self, rng):
        series = rng.uniform(1.0, 2.0, size=(32, 1))
        np.testing.assert_allclose(rolling_std(series * 10.0, 4), rolling_std(series, 4) * 10.0)


class TestTopIndices:
    def test_selects_largest(self):
        values = np.array([1.0, 9.0, 3.0, 7.0])
        np.testing.assert_array_equal(top_indices(values, 2), [1, 3])

    def test_returns_sorted(self, rng):
        values = rng.normal(size=(50,))
        idx = top_indices(values, 10)
        assert np.all(np.diff(idx) > 0)

    def test_batched(self, rng):
        values = rng.normal(size=(4, 20))
        idx = top_indices(values, 5)
        assert idx.shape == (4, 5)
        for b in range(4):
            expected = set(np.argsort(values[b])[-5:])
            assert set(idx[b]) == expected

    def test_zero_count(self):
        assert top_indices(np.ones(5), 0).shape == (0,)

    def test_count_exceeds_size_raises(self):
        with pytest.raises(ValueError):
            top_indices(np.ones(3), 4)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            top_indices(np.ones(3), -1)


class TestTemporalMasker:
    def test_mask_count_eq2(self, rng):
        masker = TemporalMasker(ratio=25.0, window=5, rng=rng)
        result = masker(rng.normal(size=(3, 40, 2)))
        assert result.num_masked == 10  # floor(25% * 40)
        assert result.mask.sum(axis=1).tolist() == [10, 10, 10]

    def test_indices_partition_the_window(self, rng):
        masker = TemporalMasker(ratio=30.0, rng=rng)
        result = masker(rng.normal(size=(2, 50, 1)))
        for b in range(2):
            combined = np.concatenate([result.masked_indices[b], result.unmasked_indices[b]])
            assert sorted(combined.tolist()) == list(range(50))

    def test_unmasked_indices_ordered(self, rng):
        masker = TemporalMasker(ratio=40.0, rng=rng)
        result = masker(rng.normal(size=(2, 30, 1)))
        assert np.all(np.diff(result.unmasked_indices, axis=1) > 0)

    def test_cov_strategy_masks_planted_spikes(self, rng):
        windows = np.zeros((1, 100, 1)) + rng.normal(1.0, 0.01, size=(1, 100, 1))
        spikes = [20, 55, 80]
        windows[0, spikes, 0] = 25.0
        masker = TemporalMasker(ratio=20.0, window=5)
        result = masker(windows)
        for spike in spikes:
            assert result.mask[0, spike], f"spike at {spike} not masked"

    def test_none_strategy_masks_nothing(self, rng):
        masker = TemporalMasker(ratio=50.0, strategy="none")
        result = masker(rng.normal(size=(2, 20, 1)))
        assert result.num_masked == 0
        assert not result.mask.any()

    def test_random_strategy_differs_from_cov(self, rng):
        windows = rng.normal(size=(1, 200, 2))
        cov = TemporalMasker(ratio=10.0, rng=np.random.default_rng(0))(windows)
        rnd = TemporalMasker(ratio=10.0, strategy="random", rng=np.random.default_rng(0))(windows)
        assert not np.array_equal(cov.masked_indices, rnd.masked_indices)

    def test_fft_and_naive_pick_same_indices(self, rng):
        windows = rng.normal(size=(2, 64, 3))
        fast = TemporalMasker(ratio=25.0, use_fft=True)(windows)
        slow = TemporalMasker(ratio=25.0, use_fft=False)(windows)
        np.testing.assert_array_equal(fast.masked_indices, slow.masked_indices)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TemporalMasker(ratio=120.0)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            TemporalMasker(ratio=10.0, strategy="bogus")

    def test_requires_batched_input(self, rng):
        with pytest.raises(ValueError):
            TemporalMasker(ratio=10.0)(rng.normal(size=(20, 2)))

    @given(ratio=st.floats(0.0, 100.0), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_mask_count_formula_property(self, ratio, seed):
        """I^(T) = floor(r% * |S|) for every ratio (Eq. 2)."""
        windows = np.random.default_rng(seed).normal(size=(1, 37, 1))
        result = TemporalMasker(ratio=ratio)(windows)
        assert result.num_masked == int(ratio / 100.0 * 37)
