"""Amplitude-based frequency masking tests (paper Eq. 6-10)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.masking import FrequencyMasker, amplitude_spectrum


class TestAmplitudeSpectrum:
    def test_shape(self, rng):
        assert amplitude_spectrum(rng.normal(size=(2, 16, 3))).shape == (2, 16, 3)

    def test_pure_tone_peaks_at_its_bin(self):
        t = np.arange(64)
        tone = np.sin(2 * np.pi * 8 * t / 64)[None, :, None]
        amp = amplitude_spectrum(tone)[0, :, 0]
        assert amp.argmax() in (8, 56)  # bin 8 and its conjugate

    def test_non_negative(self, rng):
        assert np.all(amplitude_spectrum(rng.normal(size=(1, 32, 2))) >= 0)


class TestFrequencyMasker:
    def test_mask_count_eq8(self, rng):
        masker = FrequencyMasker(ratio=25.0, rng=rng)
        result = masker(rng.normal(size=(2, 40, 3)))
        assert result.num_masked == 10
        assert result.masked_bins.shape == (2, 10, 3)

    def test_zero_ratio_identity(self, rng):
        windows = rng.normal(size=(2, 32, 2))
        result = FrequencyMasker(ratio=0.0)(windows)
        np.testing.assert_allclose(result.fixed, windows, atol=1e-12)
        np.testing.assert_array_equal(result.cos_basis, 0.0)
        assert result.num_masked == 0

    def test_none_strategy_identity(self, rng):
        windows = rng.normal(size=(1, 16, 1))
        result = FrequencyMasker(ratio=50.0, strategy="none")(windows)
        np.testing.assert_allclose(result.fixed, windows, atol=1e-12)

    def test_decomposition_identity(self, rng):
        """fixed + Re(m)*cos - Im(m)*sin == Re(IDFT(spectrum with m))."""
        windows = rng.normal(size=(3, 32, 2))
        masker = FrequencyMasker(ratio=30.0)
        result = masker(windows)
        m_re = rng.normal(size=2)
        m_im = rng.normal(size=2)

        spectrum = np.fft.fft(windows, axis=1)
        mask = np.zeros_like(spectrum, dtype=bool)
        rows = np.arange(3)[:, None, None]
        cols = np.arange(2)[None, None, :]
        mask[rows, result.masked_bins, cols] = True
        replaced = np.where(mask, m_re + 1j * m_im, spectrum)
        direct = np.fft.ifft(replaced, axis=1).real

        via_basis = result.fixed + m_re * result.cos_basis - m_im * result.sin_basis
        np.testing.assert_allclose(via_basis, direct, atol=1e-10)

    def test_amplitude_strategy_masks_smallest(self, rng):
        # Strong tone at bin 4 + weak noise elsewhere: the tone bins must
        # survive a moderate mask.
        t = np.arange(64)
        tone = 10 * np.sin(2 * np.pi * 4 * t / 64)
        windows = (tone + rng.normal(0, 0.1, 64))[None, :, None]
        result = FrequencyMasker(ratio=50.0)(windows)
        masked = set(result.masked_bins[0, :, 0].tolist())
        assert 4 not in masked and 60 not in masked
        # The dominant tone survives in the time domain.
        correlation = np.corrcoef(result.fixed[0, :, 0], tone)[0, 1]
        assert correlation > 0.99

    def test_high_strategy_masks_near_nyquist(self, rng):
        windows = rng.normal(size=(1, 40, 1))
        result = FrequencyMasker(ratio=20.0, strategy="high")(windows)
        masked = result.masked_bins[0, :, 0]
        # Bins closest to time/2 = 20.
        distances = np.abs(masked - 20)
        assert distances.max() <= 4

    def test_random_strategy_uses_rng(self, rng):
        windows = rng.normal(size=(1, 40, 1))
        a = FrequencyMasker(ratio=20.0, strategy="random", rng=np.random.default_rng(1))(windows)
        b = FrequencyMasker(ratio=20.0, strategy="random", rng=np.random.default_rng(2))(windows)
        assert not np.array_equal(a.masked_bins, b.masked_bins)

    def test_per_feature_masks_differ(self, rng):
        # Two channels with different spectra get different masked bins.
        t = np.arange(64)
        ch0 = np.sin(2 * np.pi * 3 * t / 64)
        ch1 = np.sin(2 * np.pi * 13 * t / 64)
        windows = np.stack([ch0, ch1], axis=1)[None]
        result = FrequencyMasker(ratio=80.0)(windows)
        assert not np.array_equal(result.masked_bins[0, :, 0], result.masked_bins[0, :, 1])

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            FrequencyMasker(ratio=-1.0)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            FrequencyMasker(ratio=10.0, strategy="lowpass")

    def test_requires_batched_input(self, rng):
        with pytest.raises(ValueError):
            FrequencyMasker(ratio=10.0)(rng.normal(size=(16, 1)))

    @given(
        ratio=st.floats(0.0, 95.0),
        length=st.integers(8, 48),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=30, deadline=None)
    def test_fixed_part_is_real_projection_property(self, ratio, length, seed):
        """Zeroing bins then IDFT and taking the real part never produces
        NaNs/inf, and masking all-but-none reproduces the input."""
        windows = np.random.default_rng(seed).normal(size=(1, length, 1))
        result = FrequencyMasker(ratio=ratio)(windows)
        assert np.all(np.isfinite(result.fixed))
        assert np.all(np.isfinite(result.cos_basis))
        assert result.num_masked == int(ratio / 100.0 * length)
