"""Fixtures for the chaos suite: one small fitted TFMAE, shared."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAE, TFMAEConfig


@pytest.fixture(scope="module")
def sine_series() -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(600)
    return np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (600, 1))


@pytest.fixture(scope="module")
def fitted_tfmae(sine_series) -> TFMAE:
    """One trained TFMAE for every chaos scenario (module scope: the
    faults are injected around the model, never into its weights)."""
    config = TFMAEConfig(window_size=50, d_model=16, num_layers=1, num_heads=2,
                         anomaly_ratio=5.0, epochs=1, batch_size=8,
                         learning_rate=1e-3)
    detector = TFMAE(config)
    detector.fit(sine_series[:400], sine_series[400:500])
    return detector
