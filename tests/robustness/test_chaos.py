"""Chaos suite (``make chaos``): graceful degradation of the serve stack.

Every test drives a *live* in-process HTTP server through
:class:`repro.robustness.chaos.ChaosHarness` and asserts the contract in
:data:`~repro.robustness.chaos.CHAOS_FAULTS`: healthy models answer
non-5xx under every fault, damage is contained (quarantine, breaker,
shed), and recovery is automatic.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.robustness import CHAOS_FAULTS, ChaosHarness
from repro.serve import InferenceServer, ModelRegistry

pytestmark = pytest.mark.chaos


def _post(url: str, path: str, payload: dict) -> tuple[int, dict, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@contextlib.contextmanager
def _server(tmp_path, detector, names=("tfmae",), versions=1, **registry_kwargs):
    registry_kwargs.setdefault("retry_backoff", 0.01)
    registry = ModelRegistry(tmp_path / "registry", **registry_kwargs)
    for name in names:
        for _ in range(versions):
            registry.publish(name, detector)
    server = InferenceServer(registry, port=0, max_batch_size=4,
                             max_delay=0.005, max_queue=8, workers=2)
    with server:
        yield server


def test_fault_matrix_is_complete():
    """The taxonomy the docs/bench/tests share names every scenario here."""
    assert set(CHAOS_FAULTS) == {
        "corrupt_artifact", "truncated_artifact", "slow_load",
        "transient_load_failure", "worker_exception", "queue_saturation",
        "worker_process_kill",
    }
    for fault, spec in CHAOS_FAULTS.items():
        assert spec["target"] in ("registry", "scheduler", "pool"), fault
        assert spec["expect"], fault


class TestArtifactFaults:
    def test_corrupt_live_artifact_quarantined_and_prior_served(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        payload = {"model": "tfmae", "window": sine_series[:50].tolist()}
        with _server(tmp_path, fitted_tfmae, versions=2) as server:
            status, body, _ = _post(server.url, "/score", payload)
            assert status == 200 and body["version"] == "v2"
            baseline = body["score"]
            with ChaosHarness(server) as chaos:
                chaos.corrupt_artifact("tfmae")  # damages live v2, evicts it
                status, body, _ = _post(server.url, "/score", payload)
                # Still answering, one version back — and versions are
                # immutable snapshots of the same fit, so bit-for-bit.
                assert status == 200
                assert body["version"] == "v1"
                assert body["score"] == baseline
                assert server.registry.quarantined("tfmae") == ["tfmae__v2.npz"]
                _, health = _get(server.url, "/healthz")
                assert health["status"] == "degraded"
                assert health["models"]["tfmae"]["degraded"] is True

    def test_truncated_solo_artifact_contained_to_its_model(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        window = sine_series[:50].tolist()
        with _server(tmp_path, fitted_tfmae, names=("brittle", "healthy")) as server:
            with ChaosHarness(server) as chaos:
                chaos.corrupt_artifact("brittle", truncate=True)
                status, body, _ = _post(server.url, "/score",
                                        {"model": "brittle", "window": window})
                # Typed 500 (never a raw zipfile traceback), artifact
                # quarantined, nothing left to fall back to.
                assert status == 500
                assert body["error"] == "internal"
                assert "no loadable version" in body["detail"]
                assert server.registry.quarantined("brittle") == ["brittle__v1.npz"]
                # The healthy model never notices.
                status, body, _ = _post(server.url, "/score",
                                        {"model": "healthy", "window": window})
                assert status == 200
                _, health = _get(server.url, "/healthz")
                assert health["status"] == "degraded"
                assert health["models"]["brittle"]["degraded"] is True
                assert health["models"]["healthy"]["degraded"] is False


class TestLoadFaults:
    def test_backoff_absorbs_burst_then_breaker_opens_and_recovers(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        payload = {"model": "tfmae", "window": sine_series[:50].tolist()}
        with _server(tmp_path, fitted_tfmae, load_retries=2, retry_backoff=0.01,
                     breaker_threshold=2, breaker_reset=0.3) as server:
            with ChaosHarness(server) as chaos:
                # A two-failure burst is absorbed by capped backoff.
                state = chaos.inject_transient_load_failures(times=2)
                status, _, _ = _post(server.url, "/score", payload)
                assert status == 200
                assert state["injected"] == 2
                assert server.registry.breaker_for("tfmae").state == "closed"

                # Persistent failure (nothing resident): 503s, then the
                # breaker opens and refuses without touching the disk.
                chaos.evict("tfmae")
                state = chaos.inject_transient_load_failures(times=None)
                for _ in range(2):
                    status, body, headers = _post(server.url, "/score", payload)
                    assert status == 503
                    assert body["error"] == "transient"
                    assert headers.get("Retry-After") == "1"
                injected_before = state["injected"]
                status, body, headers = _post(server.url, "/score", payload)
                assert status == 503
                assert body["error"] == "circuit_open"
                assert int(headers["Retry-After"]) >= 1
                assert state["injected"] == injected_before  # no disk attempt

                # Past the reset window the half-open probe heals it.
                chaos.clear_load_faults()
                time.sleep(0.35)
                status, body, _ = _post(server.url, "/score", payload)
                assert status == 200
                assert server.registry.breaker_for("tfmae").state == "closed"

    def test_slow_load_does_not_stall_healthy_models(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        window = sine_series[:50].tolist()
        with _server(tmp_path, fitted_tfmae, names=("slow", "fast")) as server:
            with ChaosHarness(server) as chaos:
                chaos.inject_slow_load(0.8, models={"slow"})
                results: dict[str, tuple] = {}

                def stalled() -> None:
                    results["slow"] = _post(server.url, "/score",
                                            {"model": "slow", "window": window})

                thread = threading.Thread(target=stalled)
                thread.start()
                time.sleep(0.15)  # the slow read now holds its per-name lock
                started = time.monotonic()
                status, _, _ = _post(server.url, "/score",
                                     {"model": "fast", "window": window})
                fast_elapsed = time.monotonic() - started
                thread.join()
                assert status == 200
                # Per-name load locks: the stalled read never blocks the
                # healthy model's cold load.
                assert fast_elapsed < 0.6
                # And the stalled model's request completes fine, late.
                assert results["slow"][0] == 200


class TestSchedulerFaults:
    def test_worker_exception_fails_one_request_and_worker_survives(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        payload = {"model": "tfmae", "window": sine_series[:50].tolist()}
        with _server(tmp_path, fitted_tfmae) as server:
            _, body, _ = _post(server.url, "/score", payload)
            baseline = body["score"]
            with ChaosHarness(server) as chaos:
                state = chaos.inject_worker_exception(times=1)
                status, body, _ = _post(server.url, "/score", payload)
                assert status == 500
                assert "chaos" in body["detail"]
                assert state["injected"] == 1
            # The worker thread survived; the very next request scores,
            # bitwise equal to before the fault.
            status, body, _ = _post(server.url, "/score", payload)
            assert status == 200
            assert body["score"] == baseline

    def test_queue_saturation_sheds_new_load_but_loses_nothing(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        window = sine_series[:50]
        payload = {"model": "tfmae", "window": window.tolist()}
        with _server(tmp_path, fitted_tfmae) as server:
            _, body, _ = _post(server.url, "/score", payload)
            expected = body["score"]
            with ChaosHarness(server) as chaos:
                accepted = chaos.saturate_queue("tfmae:v1", window)
                assert accepted >= 8  # at least the queue capacity parked
                # New load is shed immediately, not queued unboundedly.
                status, body, headers = _post(server.url, "/score", payload)
                assert status == 429
                assert body["error"] == "overloaded"
                assert headers.get("Retry-After") == "1"
                # ...but nothing accepted is ever lost.
                scores = chaos.release_queue()
                assert len(scores) == accepted
                assert all(score == expected for score in scores)
            status, _, _ = _post(server.url, "/score", payload)
            assert status == 200


class TestPoolFaults:
    def test_worker_kill_detect_respawn_recover(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        """worker_process_kill: detection → re-route → respawn → recovery.

        Two models on a two-worker pool; SHA-1 ring placement is stable
        across runs, so "tfmae" and "other" land on different workers.
        Killing tfmae's worker must leave "other" serving bitwise-stable
        scores throughout, and tfmae must come back on the respawned
        worker with scores bitwise equal to before the crash.
        """
        payload = {"model": "tfmae", "window": sine_series[:50].tolist()}
        other_payload = {"model": "other", "window": sine_series[:50].tolist()}
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("tfmae", fitted_tfmae)
        registry.publish("other", fitted_tfmae)
        server = InferenceServer(registry, port=0, procs=2)
        with server:
            status, body, _ = _post(server.url, "/score", payload)
            assert status == 200
            baseline = body["score"]
            status, body, _ = _post(server.url, "/score", other_payload)
            assert status == 200
            other_baseline = body["score"]
            pool = server.pool
            assert pool.worker_for("tfmae") != pool.worker_for("other")
            with ChaosHarness(server) as chaos:
                victim = chaos.kill_worker(model="tfmae")
                # The healthy model's worker is untouched: it serves
                # throughout the other shard's outage.
                status, body, _ = _post(server.url, "/score", other_payload)
                assert status == 200
                assert body["score"] == other_baseline
                assert chaos.wait_for_respawn(victim)
            # Shard routed back to the respawned worker; scores are
            # bitwise what they were before the crash (same shared
            # weights, re-attached).
            assert pool.worker_for("tfmae") == victim["slot"]
            deadline = time.monotonic() + 10.0
            while True:
                status, body, _ = _post(server.url, "/score", payload)
                if status == 200 or time.monotonic() >= deadline:
                    break
                time.sleep(0.05)  # 503 while the shard re-routes is contract
            assert status == 200
            assert body["score"] == baseline
            health_status, health = _get(server.url, "/healthz")
            assert health_status == 200
            assert health["pool"]["workers"][victim["slot"]]["respawns"] >= 1
            assert health["pool"]["alive"] == 2
