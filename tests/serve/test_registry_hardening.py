"""Registry lifecycle hardening: quarantine, live pointer, retries, breaker."""

from __future__ import annotations

import numpy as np
import pytest
import zipfile

from repro.nn.serialization import CheckpointError, load_metadata
from repro.serve import (
    CircuitOpen,
    ModelRegistry,
    RegistryError,
    TransientFault,
)
from repro.serve.errors import ModelNotFound


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _registry(root, **kwargs) -> ModelRegistry:
    kwargs.setdefault("retry_backoff", 0.001)
    kwargs.setdefault("sleep", lambda delay: None)
    return ModelRegistry(root, **kwargs)


def _truncate(path) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: max(16, len(data) // 3)])


class TestQuarantine:
    def test_truncated_artifact_raises_typed_error_not_zip_internals(
        self, tmp_path, fitted_tfmae
    ):
        """The satellite bug: a truncated ``.npz`` used to escape as a raw
        ``zipfile.BadZipFile`` from deep inside numpy."""
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        _truncate(registry._artifact_path("tfmae", "v1"))
        try:
            _registry(tmp_path).load("tfmae")
            pytest.fail("loading a truncated artifact must raise")
        except zipfile.BadZipFile:  # pragma: no cover - the regression
            pytest.fail("raw zipfile.BadZipFile escaped the registry")
        except RegistryError:
            pass

    def test_truncated_checkpoint_is_checkpoint_error(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        path = registry._artifact_path("tfmae", "v1")
        _truncate(path)
        with pytest.raises(CheckpointError, match="unreadable"):
            load_metadata(path)

    def test_corrupt_artifact_quarantined_and_previous_version_served(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        registry.publish("tfmae", fitted_tfmae)
        window = sine_series[:50]
        baseline, version = _registry(tmp_path).load("tfmae")
        assert version == "v2"
        expected = baseline.score_last(window[None])

        _truncate(registry._artifact_path("tfmae", "v2"))
        fresh = _registry(tmp_path)
        detector, served = fresh.load("tfmae")
        assert served == "v1"
        # Versions are immutable snapshots of the same fit: the fallback
        # serves the prior version's exact scores.
        np.testing.assert_array_equal(detector.score_last(window[None]), expected)
        # The damaged artifact is out of the way, not deleted.
        assert fresh.quarantined("tfmae") == ["tfmae__v2.npz"]
        assert not registry._artifact_path("tfmae", "v2").exists()
        assert fresh.versions("tfmae") == ["v1"]
        assert fresh.status("tfmae")["degraded"] is True

    def test_corrupt_only_version_fails_with_registry_error(
        self, tmp_path, fitted_tfmae
    ):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        _truncate(registry._artifact_path("tfmae", "v1"))
        fresh = _registry(tmp_path)
        with pytest.raises(RegistryError, match="no loadable version"):
            fresh.load("tfmae")
        assert fresh.quarantined("tfmae") == ["tfmae__v1.npz"]


class TestLivePointer:
    def test_set_live_records_prior_and_resolves_loads(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        registry.publish("tfmae", fitted_tfmae)
        # Without a pointer the latest serves.
        assert registry.live_version("tfmae") == "v2"
        prior = registry.set_live("tfmae", "v2")
        assert prior == "v1"
        _, version = registry.load("tfmae")
        assert version == "v2"

    def test_publish_does_not_steal_the_live_pointer(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        registry.set_live("tfmae", "v1")
        registry.publish("tfmae", fitted_tfmae)
        # v2 exists but is not promoted: guarded publishes stay dark
        # until set_live moves the pointer.
        assert registry.live_version("tfmae") == "v1"
        _, version = registry.load("tfmae")
        assert version == "v1"
        _, pinned = registry.load("tfmae", "v2")
        assert pinned == "v2"

    def test_demote_live_restores_prior_atomically(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        registry.publish("tfmae", fitted_tfmae)
        registry.set_live("tfmae", "v2")
        assert registry.demote_live("tfmae") == "v1"
        assert registry.live_version("tfmae") == "v1"
        _, version = registry.load("tfmae")
        assert version == "v1"

    def test_demote_without_prior_is_an_error(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        with pytest.raises(RegistryError, match="no recorded prior"):
            registry.demote_live("tfmae")

    def test_set_live_unknown_version_is_not_found(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        with pytest.raises(ModelNotFound):
            registry.set_live("tfmae", "v9")


class TestRetriesAndBreaker:
    def test_transient_faults_absorbed_by_capped_backoff(self, tmp_path, fitted_tfmae):
        sleeps: list[float] = []
        registry = _registry(
            tmp_path, load_retries=2, retry_backoff=0.01, sleep=sleeps.append
        )
        registry.publish("tfmae", fitted_tfmae)
        remaining = {"count": 2}

        def flaky(name: str, version: str) -> None:
            if remaining["count"] > 0:
                remaining["count"] -= 1
                raise TransientFault("injected")

        registry.load_fault_hook = flaky
        _, version = registry.load("tfmae")
        assert version == "v1"
        # Exponential: base, then doubled.
        assert sleeps == [0.01, 0.02]
        assert registry.breaker_for("tfmae").state == "closed"

    def test_persistent_failure_opens_breaker_and_serves_last_good(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        clock = FakeClock()
        registry = _registry(
            tmp_path, load_retries=0, breaker_threshold=3, breaker_reset=30.0,
            clock=clock,
        )
        registry.publish("tfmae", fitted_tfmae)
        good, _ = registry.load("tfmae")  # caches v1 as last-good
        expected = good.score_last(sine_series[:50][None])

        registry.publish("tfmae", fitted_tfmae)  # v2 becomes live, uncached

        def always_fail(name: str, version: str) -> None:
            raise TransientFault("injected persistent failure")

        registry.load_fault_hook = always_fail
        for _ in range(3):
            detector, served = registry.load("tfmae")
            # Degraded but serving: the resident v1 answers while v2 fails.
            assert served == "v1"
            np.testing.assert_array_equal(
                detector.score_last(sine_series[:50][None]), expected
            )
        status = registry.status("tfmae")
        assert status["breaker"] == "open"
        assert status["degraded"] is True
        assert status["last_good"] == "v1"
        # Open breaker: no disk attempt at all, last-good still serves.
        detector, served = registry.load("tfmae")
        assert served == "v1"

    def test_circuit_open_raised_without_last_good_then_recovers(
        self, tmp_path, fitted_tfmae
    ):
        clock = FakeClock()
        registry = _registry(
            tmp_path, load_retries=0, breaker_threshold=2, breaker_reset=10.0,
            clock=clock,
        )
        registry.publish("tfmae", fitted_tfmae)

        def always_fail(name: str, version: str) -> None:
            raise TransientFault("injected persistent failure")

        registry.load_fault_hook = always_fail
        for _ in range(2):
            with pytest.raises(TransientFault):
                registry.load("tfmae")
        with pytest.raises(CircuitOpen) as excinfo:
            registry.load("tfmae")
        assert 0.0 < excinfo.value.retry_after <= 10.0
        assert registry.status("tfmae")["breaker"] == "open"

        # Past the reset timeout the half-open probe is admitted; with
        # the fault cleared it closes the breaker again.
        clock.advance(10.5)
        registry.load_fault_hook = None
        detector, version = registry.load("tfmae")
        assert version == "v1"
        assert registry.breaker_for("tfmae").state == "closed"

    def test_half_open_failure_reopens(self, tmp_path, fitted_tfmae):
        clock = FakeClock()
        registry = _registry(
            tmp_path, load_retries=0, breaker_threshold=1, breaker_reset=5.0,
            clock=clock,
        )
        registry.publish("tfmae", fitted_tfmae)

        def always_fail(name: str, version: str) -> None:
            raise TransientFault("still broken")

        registry.load_fault_hook = always_fail
        with pytest.raises(TransientFault):
            registry.load("tfmae")
        clock.advance(5.5)  # half-open: one probe admitted, fails again
        with pytest.raises(TransientFault):
            registry.load("tfmae")
        with pytest.raises(CircuitOpen):
            registry.load("tfmae")


class TestLoadFresh:
    def test_load_fresh_returns_uncached_instance(self, tmp_path, fitted_tfmae, sine_series):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        cached_a, _ = registry.load("tfmae")
        cached_b, _ = registry.load("tfmae")
        assert cached_a is cached_b
        fresh, version = registry.load_fresh("tfmae")
        assert version == "v1"
        assert fresh is not cached_a
        # Same artifact, same scores — mutating the fresh copy (a refit)
        # must not reach the cached serving instance.
        window = sine_series[:50][None]
        np.testing.assert_array_equal(
            fresh.score_last(window), cached_a.score_last(window)
        )
        next(fresh.model.parameters()).data[:] = np.nan
        assert np.all(np.isfinite(cached_a.score_last(window)))

    def test_status_payload_shape(self, tmp_path, fitted_tfmae):
        registry = _registry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        status = registry.status("tfmae")
        assert status["live"] == "v1"
        assert status["versions"] == ["v1"]
        assert status["breaker"] == "closed"
        assert status["quarantined"] == []
        assert status["degraded"] is False
