"""Micro-batcher: equivalence, coalescing, backpressure, shutdown."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import MicroBatcher, Overloaded, ServeError
from repro.serve.metrics import MetricsRegistry


def _batcher_for(detector, **kwargs) -> MicroBatcher:
    return MicroBatcher(detector_for=lambda key: detector, **kwargs)


class TestEquivalence:
    def test_batched_scores_bitwise_equal_sequential(self, toy_detector, rng):
        windows = [rng.normal(size=(8, 1)) for _ in range(20)]
        expected = np.array([toy_detector.score(w)[-1] for w in windows])
        with _batcher_for(toy_detector, max_batch_size=8, max_delay=0.01) as batcher:
            futures = [batcher.submit("m", w) for w in windows]
            got = np.array([f.result(timeout=10) for f in futures])
        assert np.array_equal(expected, got)

    def test_tfmae_batched_scores_bitwise_equal_sequential(self, fitted_tfmae, sine_series):
        windows = [sine_series[i : i + 50] for i in range(100, 160, 3)]
        expected = np.array([fitted_tfmae.score(w)[-1] for w in windows])
        with _batcher_for(fitted_tfmae, max_batch_size=16, max_delay=0.01) as batcher:
            futures = [batcher.submit("m", w) for w in windows]
            got = np.array([f.result(timeout=60) for f in futures])
        assert np.array_equal(expected, got)

    def test_equivalence_under_concurrent_clients(self, fitted_tfmae, sine_series):
        """The acceptance-criteria test shape: many threads racing into
        the batcher must each receive exactly the sequential score."""
        windows = [sine_series[i : i + 50] for i in range(80, 200, 2)]
        expected = np.array([fitted_tfmae.score(w)[-1] for w in windows])
        results: list[float | None] = [None] * len(windows)
        with _batcher_for(fitted_tfmae, max_batch_size=8, max_delay=0.005,
                          workers=3) as batcher:

            def client(index: int) -> None:
                results[index] = batcher.score("m", windows[index], timeout=60)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(windows))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert np.array_equal(expected, np.array(results))

    def test_mixed_window_shapes_are_grouped_not_mixed(self, toy_detector, rng):
        short = rng.normal(size=(4, 1))
        long = rng.normal(size=(9, 1))
        with _batcher_for(toy_detector, max_batch_size=16, max_delay=0.02) as batcher:
            futures = [batcher.submit("m", w) for w in (short, long, short, long)]
            got = [f.result(timeout=10) for f in futures]
        assert got[0] == toy_detector.score(short)[-1]
        assert got[1] == toy_detector.score(long)[-1]


class TestCoalescing:
    def test_concurrent_requests_coalesce_into_batches(self, toy_detector, rng):
        calls: list[int] = []

        class Spy:
            def score_last(self, windows):
                calls.append(len(windows))
                return np.asarray(windows)[:, -1, 0]

        batcher = MicroBatcher(detector_for=lambda key: Spy(),
                               max_batch_size=32, max_delay=0.05)
        with batcher:
            futures = [batcher.submit("m", rng.normal(size=(4, 1))) for _ in range(24)]
            for future in futures:
                future.result(timeout=10)
        assert sum(calls) == 24
        assert max(calls) > 1  # coalescing actually happened
        assert batcher.metrics.histogram("serve_batch_size").summary()["max"] > 1

    def test_max_batch_size_respected(self, toy_detector, rng):
        with _batcher_for(toy_detector, max_batch_size=4, max_delay=0.05) as batcher:
            futures = [batcher.submit("m", rng.normal(size=(4, 1))) for _ in range(16)]
            for future in futures:
                future.result(timeout=10)
        assert batcher.metrics.histogram("serve_batch_size").summary()["max"] <= 4

    def test_lone_request_not_stuck_beyond_max_delay(self, toy_detector, rng):
        with _batcher_for(toy_detector, max_batch_size=64, max_delay=0.01) as batcher:
            start = time.monotonic()
            batcher.score("m", rng.normal(size=(4, 1)), timeout=10)
            elapsed = time.monotonic() - start
        assert elapsed < 5.0  # flushed by the delay policy, not the batch filling


class TestBackpressure:
    def test_overloaded_when_queue_full(self, rng):
        release = threading.Event()

        class Slow:
            def score_last(self, windows):
                release.wait(timeout=30)
                return np.asarray(windows)[:, -1, 0]

        batcher = MicroBatcher(detector_for=lambda key: Slow(),
                               max_batch_size=1, max_delay=0.0, max_queue=2)
        with batcher:
            futures = [batcher.submit("m", rng.normal(size=(4, 1)))]
            # Worker holds one batch; fill the queue, then overflow it.
            deadline = time.monotonic() + 5
            shed = 0
            while time.monotonic() < deadline and shed == 0:
                try:
                    futures.append(batcher.submit("m", rng.normal(size=(4, 1))))
                except Overloaded as error:
                    shed += 1
                    assert error.capacity == 2
            release.set()
            for future in futures:
                future.result(timeout=30)
        assert shed == 1
        assert batcher.metrics.counter("serve_requests_shed_total").value >= 1

    def test_queue_depth_gauge_tracked(self, toy_detector, rng):
        with _batcher_for(toy_detector, max_batch_size=8, max_delay=0.0) as batcher:
            batcher.score("m", rng.normal(size=(4, 1)), timeout=10)
        assert "serve_queue_depth" in batcher.metrics.snapshot()["gauges"]


class TestLifecycle:
    def test_submit_before_start_rejected(self, toy_detector, rng):
        batcher = _batcher_for(toy_detector)
        with pytest.raises(ServeError, match="not started"):
            batcher.submit("m", rng.normal(size=(4, 1)))

    def test_stop_drains_accepted_work(self, toy_detector, rng):
        batcher = _batcher_for(toy_detector, max_batch_size=4, max_delay=0.0).start()
        futures = [batcher.submit("m", rng.normal(size=(4, 1))) for _ in range(12)]
        batcher.stop()
        results = [future.result(timeout=10) for future in futures]
        assert len(results) == 12

    def test_submit_after_stop_rejected(self, toy_detector, rng):
        batcher = _batcher_for(toy_detector).start()
        batcher.stop()
        with pytest.raises(ServeError, match="stopped"):
            batcher.submit("m", rng.normal(size=(4, 1)))

    def test_stop_idempotent(self, toy_detector):
        batcher = _batcher_for(toy_detector).start()
        batcher.stop()
        batcher.stop()

    def test_detector_errors_propagate_to_futures(self, rng):
        class Broken:
            def score_last(self, windows):
                raise RuntimeError("model exploded")

        batcher = MicroBatcher(detector_for=lambda key: Broken(),
                               max_batch_size=4, max_delay=0.0)
        with batcher:
            future = batcher.submit("m", rng.normal(size=(4, 1)))
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=10)

    def test_invalid_parameters(self, toy_detector):
        for kwargs in ({"max_batch_size": 0}, {"max_delay": -1.0},
                       {"max_queue": 0}, {"workers": 0}):
            with pytest.raises(ValueError):
                _batcher_for(toy_detector, **kwargs)

    def test_shared_metrics_registry(self, toy_detector, rng):
        metrics = MetricsRegistry()
        with _batcher_for(toy_detector, metrics=metrics, max_delay=0.0) as batcher:
            batcher.score("m", rng.normal(size=(4, 1)), timeout=10)
        assert metrics.counter("serve_batches_total").value >= 1
