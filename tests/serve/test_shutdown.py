"""Graceful HTTP shutdown: accepted ``/score`` requests drain, never drop.

``InferenceServer.stop()`` must stop *accepting* first, then wait for
handlers already inside the request path to finish — with the scoring
tier (threads or process pool) kept alive until the drain completes.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.serve import InferenceServer, ModelRegistry


def _post_score(url: str, payload: dict, timeout: float = 60.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/score", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def test_inflight_request_drains_before_thread_tier_stops(
    tmp_path, fitted_tfmae, sine_series
):
    """A request parked inside scoring completes even when stop() races it."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("tfmae", fitted_tfmae)
    server = InferenceServer(registry, port=0, workers=1)
    server.start()
    payload = {"model": "tfmae", "window": sine_series[:50].tolist()}
    _, body = _post_score(server.url, payload)
    expected = body["score"]

    gate = threading.Event()
    entered = threading.Event()
    original = server.batcher.detector_for

    def gated(key: str):
        entered.set()
        gate.wait(timeout=30.0)
        return original(key)

    server.batcher.detector_for = gated
    result: dict = {}

    def client() -> None:
        result["response"] = _post_score(server.url, payload)

    client_thread = threading.Thread(target=client)
    client_thread.start()
    assert entered.wait(timeout=10.0)

    stopper = threading.Thread(target=server.stop)
    stopper.start()
    # stop() must now be parked in the drain: the accept loop is down but
    # the in-flight handler (blocked behind the gate) holds it open.
    time.sleep(0.3)
    assert stopper.is_alive()
    assert server._inflight_http == 1
    gate.set()
    client_thread.join(timeout=30.0)
    stopper.join(timeout=30.0)
    assert not stopper.is_alive()
    status, body = result["response"]
    assert status == 200
    assert body["score"] == expected


def test_concurrent_scores_drain_under_process_pool(
    tmp_path, fitted_tfmae, sine_series
):
    """Stopping mid-burst never drops an accepted request (pool tier)."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("tfmae", fitted_tfmae)
    server = InferenceServer(registry, port=0, procs=2)
    server.start()
    window = sine_series[:50]
    payload = {"model": "tfmae", "window": window.tolist()}
    _, body = _post_score(server.url, payload)
    expected = body["score"]

    results: list = []
    lock = threading.Lock()

    def client() -> None:
        try:
            outcome = _post_score(server.url, payload)
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            # Refused at connect after shutdown — acceptable; what must
            # never happen is an accepted request dying mid-flight.
            outcome = ("refused", str(error))
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=client) for _ in range(12)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let the burst land in-flight
    server.stop()
    for thread in threads:
        thread.join(timeout=60.0)

    assert len(results) == 12
    completed = [r for r in results if r[0] == 200]
    assert completed, f"every request was refused: {results}"
    for status, body in completed:
        assert body["score"] == expected  # drained AND bitwise correct
    # Nothing came back as a server-side drop (5xx / truncated response).
    assert all(status in (200, "refused") for status, _ in results)


def test_stop_is_idempotent_and_releases_port(tmp_path, fitted_tfmae):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("tfmae", fitted_tfmae)
    server = InferenceServer(registry, port=0, workers=1)
    host, port = server.start()
    server.stop()
    server.stop()  # second stop is a no-op, not an error
    # The port is free again: a new server can bind it immediately.
    rebound = InferenceServer(registry, host=host, port=port, workers=1)
    rebound.start()
    rebound.stop()
