"""End-to-end: in-process HTTP server, concurrent clients, metrics.

Covers the acceptance criteria: the server starts in-process, serves a
registered fitted detector, scores concurrent requests through the
micro-batcher with results equal to sequential scoring, and ``/metrics``
reports non-zero request counts and latency histograms.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import InferenceServer, ModelRegistry


def _post(url: str, path: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def served(tmp_path_factory, fitted_tfmae):
    """One registry + running server shared by the module's tests."""
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    registry.publish("tfmae", fitted_tfmae)     # v1
    registry.publish("tfmae", fitted_tfmae)     # v2 (same weights, tests "latest")
    server = InferenceServer(registry, port=0, max_batch_size=8,
                             max_delay=0.005, workers=2)
    with server:
        yield server


class TestEndToEnd:
    def test_concurrent_scores_equal_sequential(self, served, fitted_tfmae, sine_series):
        windows = [sine_series[i : i + 50] for i in range(100, 180, 2)]
        expected = np.array([fitted_tfmae.score(w)[-1] for w in windows])
        statuses: list[int | None] = [None] * len(windows)
        bodies: list[dict | None] = [None] * len(windows)

        def client(index: int) -> None:
            statuses[index], bodies[index] = _post(
                served.url, "/score",
                {"model": "tfmae", "window": windows[index].tolist()},
            )

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(windows))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(status == 200 for status in statuses)
        got = np.array([body["score"] for body in bodies])
        assert np.array_equal(expected, got)
        # Latest version resolved and echoed back.
        assert all(body["version"] == "v2" for body in bodies)
        # The calibrated threshold is served with every score.
        assert all(body["threshold"] == fitted_tfmae.threshold_ for body in bodies)

    def test_simultaneous_connect_burst_survives(self, served, sine_series):
        """All connections in one instant succeed (regression: the stdlib
        accept backlog of 5 reset bursty clients at the kernel level)."""
        clients = 48
        barrier = threading.Barrier(clients)
        window = sine_series[:50].tolist()
        results: list[object] = [None] * clients

        def client(index: int) -> None:
            barrier.wait()
            try:
                results[index], _ = _post(
                    served.url, "/score", {"model": "tfmae", "window": window}
                )
            except OSError as error:  # ConnectionResetError et al.
                results[index] = repr(error)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [200] * clients

    def test_metrics_report_requests_and_latency(self, served, sine_series):
        _post(served.url, "/score",
              {"model": "tfmae", "window": sine_series[:50].tolist()})
        status, snapshot = _get(served.url, "/metrics")
        assert status == 200
        counters = snapshot["counters"]
        score_requests = [value for key, value in counters.items()
                          if key.startswith("serve_http_requests_total")
                          and "endpoint=/score" in key and "status=200" in key]
        assert sum(score_requests) > 0
        latency = snapshot["histograms"]["serve_http_latency_seconds{endpoint=/score}"]
        assert latency["count"] > 0
        for quantile in ("p50", "p95", "p99"):
            assert latency[quantile] is not None and latency[quantile] >= 0
        batch = snapshot["histograms"]["serve_batch_size"]
        assert batch["count"] > 0

    def test_predict_returns_label_only(self, served, fitted_tfmae, sine_series):
        window = sine_series[100:150]
        status, body = _post(served.url, "/predict",
                             {"model": "tfmae", "window": window.tolist()})
        assert status == 200
        expected = bool(fitted_tfmae.score(window)[-1] >= fitted_tfmae.threshold_)
        assert body["anomaly"] is expected
        assert "score" not in body and "threshold" not in body

    def test_pinned_version(self, served, sine_series):
        status, body = _post(served.url, "/score",
                             {"model": "tfmae", "version": "v1",
                              "window": sine_series[:50].tolist()})
        assert status == 200
        assert body["version"] == "v1"

    def test_univariate_flat_window_accepted(self, served, sine_series):
        status, body = _post(served.url, "/score",
                             {"model": "tfmae",
                              "window": sine_series[:50, 0].tolist()})
        assert status == 200

    def test_healthz(self, served):
        status, body = _get(served.url, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert "tfmae" in body["models"]
        model = body["models"]["tfmae"]
        assert model["live"] == "v2"
        assert model["breaker"] == "closed"
        assert model["degraded"] is False
        assert body["queue_depth"] == 0
        assert body["workers"] == 2

    def test_forced_open_breaker_flips_healthz(self, served):
        """Regression for the health payload: breaker state must surface
        per model, flipping the top-level status to degraded."""
        breaker = served.registry.breaker_for("tfmae")
        try:
            breaker.force_open()
            status, body = _get(served.url, "/healthz")
            assert status == 200
            assert body["status"] == "degraded"
            model = body["models"]["tfmae"]
            assert model["breaker"] == "open"
            assert model["degraded"] is True
            assert model["retry_after"] > 0
        finally:
            breaker.record_success()
        _, body = _get(served.url, "/healthz")
        assert body["status"] == "ok"
        assert body["models"]["tfmae"]["breaker"] == "closed"

    def test_models_listing(self, served):
        status, body = _get(served.url, "/models")
        assert status == 200
        assert body["models"]["tfmae"] == ["v1", "v2"]


class TestErrorMapping:
    def test_unknown_model_404(self, served, sine_series):
        status, body = _post(served.url, "/score",
                             {"model": "ghost", "window": sine_series[:50].tolist()})
        assert status == 404
        assert body["error"] == "model_not_found"

    def test_unknown_version_404(self, served, sine_series):
        status, body = _post(served.url, "/score",
                             {"model": "tfmae", "version": "v99",
                              "window": sine_series[:50].tolist()})
        assert status == 404

    def test_missing_window_400(self, served):
        status, body = _post(served.url, "/score", {"model": "tfmae"})
        assert status == 400
        assert body["error"] == "bad_request"

    def test_nonfinite_window_400(self, served):
        status, body = _post(served.url, "/score",
                             {"model": "tfmae", "window": [1.0, None, 3.0]})
        assert status == 400

    def test_invalid_json_400(self, served):
        request = urllib.request.Request(
            served.url + "/score", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_route_404(self, served):
        status, body = _get(served.url, "/nope")
        assert status == 404

    def test_error_requests_counted(self, served, sine_series):
        _post(served.url, "/score", {"model": "ghost",
                                     "window": sine_series[:50].tolist()})
        _, snapshot = _get(served.url, "/metrics")
        missing = [value for key, value in snapshot["counters"].items()
                   if "status=404" in key and "model=ghost" in key]
        assert sum(missing) > 0
