"""Lifecycle guardrails: drift detection, shadow gate, watchdog rollback,
and swap safety of in-flight scoring across a publish."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets.injection import inject_drift
from repro.serve import (
    DriftMonitor,
    LifecycleManager,
    MicroBatcher,
    ModelRegistry,
    shadow_compare,
)
from repro.streaming import StreamingDetector
from tests.serve.conftest import AbsLastDetector


def _probe_windows(series: np.ndarray, size: int = 50, count: int = 32) -> np.ndarray:
    starts = np.linspace(0, series.shape[0] - size, count).astype(int)
    return np.stack([series[s : s + size] for s in starts])


# ----------------------------------------------------------------------
# drift monitor
# ----------------------------------------------------------------------
class TestDriftMonitor:
    @pytest.mark.parametrize("scenario", ["level_shift", "variance_drift", "trend_drift"])
    def test_injected_drift_is_flagged(self, rng, toy_detector, scenario):
        clean = rng.normal(size=(600, 1))
        drifted, mask = inject_drift(clean, scenario, rng, onset_fraction=0.5,
                                     severity=4.0)
        assert mask.sum() == 300
        monitor = DriftMonitor(toy_detector.score(clean), ks_threshold=0.2,
                               window=256, min_samples=64, patience=2)
        monitor.observe(toy_detector.score(drifted[300:]))
        first = monitor.check()
        assert first.breaches == 1 and not first.drifted  # patience holds
        second = monitor.check()
        assert second.drifted
        assert second.ks > 0.2

    def test_stable_stream_never_drifts(self, rng, toy_detector):
        clean = rng.normal(size=(600, 1))
        monitor = DriftMonitor(toy_detector.score(clean), ks_threshold=0.2,
                               window=256, min_samples=64, patience=2)
        fresh = rng.normal(size=(600, 1))
        monitor.observe(toy_detector.score(fresh))
        for _ in range(5):
            assert not monitor.check().drifted

    def test_single_anomalous_burst_is_not_drift(self, rng, toy_detector):
        """One breach recovers: a burst is signal for the detector, not
        a reason to retrain it."""
        clean = rng.normal(size=(600, 1))
        monitor = DriftMonitor(toy_detector.score(clean), ks_threshold=0.2,
                               window=128, min_samples=64, patience=2)
        monitor.observe(np.abs(rng.normal(8.0, 1.0, size=200)))  # burst
        assert not monitor.check().drifted
        monitor.observe(toy_detector.score(rng.normal(size=(400, 1))))
        report = monitor.check()
        assert report.breaches in (0, 1)
        assert not monitor.check().drifted

    def test_events_feed_skips_nonfinite(self, rng, toy_detector):
        from repro.streaming import StreamEvent

        monitor = DriftMonitor(toy_detector.score(rng.normal(size=(300, 1))),
                               min_samples=2)
        events = [
            StreamEvent(index=0, score=float("nan"), is_anomaly=False,
                        flags=("warmup",)),
            StreamEvent(index=1, score=0.5, is_anomaly=False),
            StreamEvent(index=2, score=1.5, is_anomaly=False),
        ]
        monitor.observe_events(events)
        assert monitor.samples == 2


# ----------------------------------------------------------------------
# shadow scoring
# ----------------------------------------------------------------------
class TestShadowCompare:
    def test_identical_candidate_agrees(self, fitted_tfmae, sine_series):
        windows = _probe_windows(sine_series)
        report = shadow_compare(fitted_tfmae, fitted_tfmae, windows)
        assert report.agreed
        assert report.ks == 0.0
        assert report.agreement == 1.0
        assert report.live_crossings == report.candidate_crossings

    def test_nan_candidate_is_rejected(self, tmp_path, fitted_tfmae, sine_series):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        candidate, _ = registry.load_fresh("tfmae")
        next(candidate.model.parameters()).data[:] = np.nan
        report = shadow_compare(fitted_tfmae, candidate,
                                _probe_windows(sine_series))
        assert not report.agreed
        assert "non-finite" in report.reasons[0]

    def test_diverging_candidate_is_rejected(self, tmp_path, fitted_tfmae, sine_series):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        candidate, _ = registry.load_fresh("tfmae")
        for param in candidate.model.parameters():
            param.data *= 5.0
        report = shadow_compare(fitted_tfmae, candidate,
                                _probe_windows(sine_series), max_ks=0.2)
        assert not report.agreed
        assert report.reasons


# ----------------------------------------------------------------------
# guarded publish + watchdog rollback (the e2e satellite)
# ----------------------------------------------------------------------
class TestWatchdogRollback:
    def test_bad_publish_rolls_back_to_bitwise_identical_scores(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        registry = ModelRegistry(tmp_path)
        manager = LifecycleManager(registry, "tfmae", detect_anomaly=True)
        windows = _probe_windows(sine_series)

        assert manager.publish_guarded(fitted_tfmae, windows) == "v1"
        live, version = registry.load("tfmae")
        assert version == "v1"
        baseline = live.score_last(windows)
        assert np.all(np.isfinite(baseline))

        # Deliberately-bad candidate: NaN weights make every score
        # non-finite.  publish_guarded bypasses the shadow gate — this is
        # the "bad model reached production anyway" scenario the
        # watchdog exists for.
        candidate, _ = registry.load_fresh("tfmae")
        next(candidate.model.parameters()).data[:] = np.nan
        assert manager.publish_guarded(candidate, windows) == "v2"
        assert registry.live_version("tfmae") == "v2"
        poisoned, _ = registry.load("tfmae")
        assert not np.all(np.isfinite(poisoned.score_last(windows)))

        report = manager.watchdog_check()
        assert not report.healthy
        assert report.rolled_back
        assert report.restored == "v1"
        assert "non-finite" in report.reasons[0]

        # Served scores return bitwise to the prior version's.
        restored, version = registry.load("tfmae")
        assert version == "v1"
        np.testing.assert_array_equal(restored.score_last(windows), baseline)

        # The audit trail recorded the rollback with its reason.
        record = manager.history[-1]
        assert record.demoted == "v2" and record.restored == "v1"
        assert np.isfinite(record.latency)

    def test_healthy_publish_passes_watchdog(self, tmp_path, fitted_tfmae, sine_series):
        registry = ModelRegistry(tmp_path)
        manager = LifecycleManager(registry, "tfmae")
        windows = _probe_windows(sine_series)
        manager.publish_guarded(fitted_tfmae, windows)
        candidate, _ = registry.load_fresh("tfmae")
        manager.publish_guarded(candidate, windows)
        report = manager.watchdog_check()
        assert report.healthy
        assert not report.rolled_back
        assert registry.live_version("tfmae") == "v2"
        assert report.checks["probe_ks"] == 0.0


# ----------------------------------------------------------------------
# drift-triggered refresh pipeline
# ----------------------------------------------------------------------
class TestRefresh:
    def test_no_drift_means_no_refresh(self, rng, tmp_path, fitted_tfmae, sine_series):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        monitor = DriftMonitor(np.abs(rng.normal(size=500)), min_samples=1000)
        manager = LifecycleManager(registry, "tfmae", drift=monitor)
        report = manager.refresh(sine_series[:200])
        assert not report.refreshed
        assert report.reason == "no drift detected"
        assert registry.versions("tfmae") == ["v1"]

    def test_forced_refresh_publishes_agreeing_candidate(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        # No-op refit: the candidate is a fresh copy of the live weights,
        # so the shadow gate trivially agrees — this exercises the
        # pipeline wiring, not training.
        manager = LifecycleManager(registry, "tfmae",
                                   refit=lambda cand, recent, val: None)
        report = manager.refresh(sine_series[:200], force=True)
        assert report.refreshed
        assert report.version == "v2"
        assert report.shadow is not None and report.shadow.agreed
        assert registry.live_version("tfmae") == "v2"

    def test_refresh_rejects_diverging_candidate(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)

        def sabotage(candidate, recent, validation) -> None:
            for param in candidate.model.parameters():
                param.data *= 5.0

        manager = LifecycleManager(registry, "tfmae", refit=sabotage,
                                   shadow_max_ks=0.2)
        report = manager.refresh(sine_series[:200], force=True)
        assert not report.refreshed
        assert "shadow disagreement" in report.reason
        # Nothing was published, nothing moved.
        assert registry.versions("tfmae") == ["v1"]
        assert registry.live_version("tfmae") == "v1"

    def test_real_refit_refresh_end_to_end(self, tmp_path, fitted_tfmae, sine_series):
        """Default refit path: a one-epoch incremental TFMAE refit on the
        recent slice still agrees with the live model on clean data."""
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        manager = LifecycleManager(
            registry, "tfmae",
            refit=lambda cand, recent, val: cand.refit(recent, val, epochs=1),
            shadow_max_ks=0.5, shadow_min_agreement=0.8,
        )
        report = manager.refresh(sine_series[:300], validation=sine_series[300:400],
                                 force=True)
        assert report.refreshed
        assert registry.live_version("tfmae") == "v2"
        refreshed, _ = registry.load("tfmae")
        assert np.all(np.isfinite(refreshed.score_last(_probe_windows(sine_series))))
        assert report.refit_seconds is not None and report.refit_seconds >= 0.0

    def test_refresh_end_to_end_with_train_jit(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        """The drift-refresh loop trains its candidate through the
        compiled train step (repro.nn.jit_train) and publishes normally;
        refit wall-clock is reported on the refresh report."""
        from repro.core.trainer import TFMAETrainer

        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        counters = {}

        def refit(candidate, recent, validation) -> None:
            # Mirrors TFMAE.refit, but keeps the trainer visible so the
            # test can assert the compiled path actually ran.
            config = candidate.config.with_overrides(epochs=2, train_jit=True)
            trainer = TFMAETrainer(candidate.model, config)
            counters["step"] = trainer.train_step
            candidate.training_log = trainer.fit(recent, validation=validation)
            candidate.calibrate_threshold(validation)

        manager = LifecycleManager(
            registry, "tfmae", refit=refit,
            shadow_max_ks=0.5, shadow_min_agreement=0.8,
        )
        report = manager.refresh(sine_series[:300], validation=sine_series[300:400],
                                 force=True)
        assert report.refreshed
        assert registry.live_version("tfmae") == "v2"
        step = counters["step"]
        assert step.traces >= 1
        assert step.replays >= 1
        assert step.fallbacks == 0
        assert report.refit_seconds is not None and report.refit_seconds > 0.0
        refreshed, _ = registry.load("tfmae")
        assert np.all(np.isfinite(refreshed.score_last(_probe_windows(sine_series))))


# ----------------------------------------------------------------------
# swap safety: in-flight scoring never mixes weights
# ----------------------------------------------------------------------
class _OffsetDetector(AbsLastDetector):
    """|x| plus a constant — batches scored by it are unmistakable."""

    def __init__(self, offset: float, **kwargs):
        super().__init__(**kwargs)
        self.offset = offset

    def score(self, series: np.ndarray) -> np.ndarray:
        return super().score(series) + self.offset


class TestSwapSafety:
    def test_swap_identical_detector_is_bitwise_invisible(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        plain = StreamingDetector(fitted_tfmae, context=50)
        swapped = StreamingDetector(fitted_tfmae, context=50)
        batches = [sine_series[i : i + 40] for i in range(0, 200, 40)]
        expected = [plain.update_many(batch) for batch in batches]
        observed = []
        for index, batch in enumerate(batches):
            if index == 2:  # mid-stream version swap (same weights)
                replacement, _ = registry.load_fresh("tfmae")
                swapped.swap_detector(replacement)
            observed.append(swapped.update_many(batch))
        for expect, got in zip(expected, observed):
            np.testing.assert_array_equal(
                np.array([e.score for e in expect]),
                np.array([g.score for g in got]),
            )
            assert [e.flags for e in expect] == [g.flags for g in got]

    def test_concurrent_swaps_never_mix_weights_within_a_batch(self, rng):
        low = _OffsetDetector(0.0, anomaly_ratio=5.0)
        high = _OffsetDetector(1000.0, anomaly_ratio=5.0)
        train = rng.normal(size=(100, 1))
        low.fit(train, rng.normal(size=(300, 1)))
        high.fit(train, rng.normal(size=(300, 1)))
        stream = StreamingDetector(low, context=4, warmup=2)

        stop = threading.Event()

        def swapper() -> None:
            current = [high, low]
            while not stop.is_set():
                stream.swap_detector(current[0])
                current.reverse()

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(100):
                batch = rng.normal(size=(8, 1))
                events = stream.update_many(batch)
                # Recover the offset each event was scored with: the
                # window ends at the observation, so |last value| is the
                # detector-independent part of the score.
                tails = np.abs(batch[:, 0])
                offsets = np.array(
                    [e.score - tails[i] for i, e in enumerate(events)
                     if np.isfinite(e.score)]
                )
                if offsets.size == 0:
                    continue
                # Every scored event of this batch used ONE detector:
                # all offsets ~0.0, or all ~1000.0 — never a mixture.
                assert np.allclose(offsets, offsets[0]), offsets
                assert min(abs(offsets[0]), abs(offsets[0] - 1000.0)) < 1e-9
        finally:
            stop.set()
            thread.join()

    def test_inflight_batched_scores_bitwise_across_publish(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        """Serving pins a resolved version before batching; a publish
        mid-flight must not perturb a single bit of v1's scores."""
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        windows = _probe_windows(sine_series, count=24)
        detector, _ = registry.load("tfmae", "v1")
        expected = [float(detector.score(window)[-1]) for window in windows]

        def detector_for(model_key: str):
            name, _, version = model_key.partition(":")
            loaded, _ = registry.load(name, version or None)
            return loaded

        with MicroBatcher(detector_for=detector_for, max_batch_size=8,
                          max_delay=0.01, workers=2) as batcher:
            futures = [batcher.submit("tfmae:v1", window) for window in windows[:12]]
            # Publish and promote a refit candidate while those batches
            # are in flight.
            candidate, _ = registry.load_fresh("tfmae")
            for param in candidate.model.parameters():
                param.data *= 2.0
            registry.publish("tfmae", candidate)
            registry.set_live("tfmae", "v2")
            futures += [batcher.submit("tfmae:v1", window) for window in windows[12:]]
            scores = [future.result(timeout=30.0) for future in futures]
        assert scores == expected
