"""Process-pool tier: ring routing, shared weights, equivalence, supervision.

Pool startup pays a worker-process spawn (~seconds of interpreter +
import time each), so the integration tests share one module-scoped
two-worker pool and the crash test spawns its own.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import (
    HashRing,
    MicroBatcher,
    Overloaded,
    ProcessPool,
    TransientFault,
    WeightSegment,
    attach_segment,
)
from repro.serve.pool import _classify, _rebuild_error


class TestHashRing:
    def test_routing_is_stable_and_total(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"model-{i}" for i in range(64)]
        owners = {key: ring.node_for(key) for key in keys}
        assert set(owners.values()) <= {"w0", "w1", "w2"}
        assert {key: ring.node_for(key) for key in keys} == owners

    def test_node_death_moves_only_its_shard(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"model-{i}" for i in range(200)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("w1")
        after = {key: ring.node_for(key) for key in keys}
        for key in keys:
            if before[key] != "w1":
                assert after[key] == before[key]  # survivors keep their shard
            else:
                assert after[key] in ("w0", "w2")

    def test_respawn_routes_shard_back(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"model-{i}" for i in range(200)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("w2")
        ring.add_node("w2")
        assert {key: ring.node_for(key) for key in keys} == before

    def test_empty_ring_raises_lookup_error(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.node_for("anything")

    def test_membership_ops_are_idempotent(self):
        ring = HashRing(["w0"])
        ring.add_node("w0")
        assert len(ring) == 1
        ring.remove_node("missing")
        ring.remove_node("w0")
        ring.remove_node("w0")
        assert len(ring) == 0 and "w0" not in ring

    def test_virtual_nodes_spread_load(self):
        ring = HashRing([f"w{i}" for i in range(4)], replicas=64)
        counts: dict[str, int] = {}
        for i in range(2000):
            owner = ring.node_for(f"key-{i}")
            counts[owner] = counts.get(owner, 0) + 1
        assert len(counts) == 4
        assert min(counts.values()) > 2000 / 4 * 0.4  # no starved node


class TestWeightSegment:
    def test_publish_attach_roundtrip_bitwise(self, fitted_tfmae):
        module = fitted_tfmae.model
        segment = WeightSegment.publish(module)
        try:
            reader = attach_segment(segment.name, segment.manifest)
            source = module.state_dict()
            shared = reader.state()
            assert set(shared) == set(source)
            for key, array in source.items():
                assert np.array_equal(shared[key], array)
                assert not shared[key].flags.writeable
            reader.close()
        finally:
            segment.close()

    def test_owner_close_unlinks(self, fitted_tfmae):
        segment = WeightSegment.publish(fitted_tfmae.model)
        name, manifest = segment.name, segment.manifest
        segment.close()
        with pytest.raises(FileNotFoundError):
            attach_segment(name, manifest)

    def test_segment_size_matches_layout(self, fitted_tfmae):
        from repro.nn.serialization import state_layout

        nbytes, _ = state_layout(fitted_tfmae.model.state_dict())
        with WeightSegment.publish(fitted_tfmae.model) as segment:
            assert segment.nbytes == nbytes


class TestErrorTransport:
    def test_typed_errors_survive_the_pipe(self):
        for error in (Overloaded(depth=4, capacity=4), TransientFault("x"),
                      ValueError("bad"), RuntimeError("boom")):
            kind = _classify(error)
            rebuilt = _rebuild_error(kind, str(error))
            assert isinstance(rebuilt, Exception)
        assert _classify(TransientFault("x")) == "transient"
        assert isinstance(_rebuild_error("transient", "x"), TransientFault)
        assert isinstance(_rebuild_error("value", "x"), ValueError)
        assert isinstance(_rebuild_error("unknown_kind", "x"), RuntimeError)


@pytest.fixture(scope="module")
def pool(fitted_tfmae):
    with ProcessPool(procs=2, heartbeat_interval=0.2) as pool:
        yield pool


class TestProcessPool:
    def test_scores_bitwise_match_direct_and_threaded_paths(
        self, pool, fitted_tfmae, sine_series
    ):
        window = sine_series[-50:]
        direct = float(fitted_tfmae.score_last(window[None])[0])
        batcher = MicroBatcher(detector_for=lambda key: fitted_tfmae, workers=2)
        with batcher:
            threaded = batcher.score("tfmae:v1", window)
        assert threaded == direct
        with ThreadPoolExecutor(8) as executor:
            pooled = list(executor.map(
                lambda _: pool.score("tfmae", "v1", fitted_tfmae, window),
                range(24),
            ))
        assert all(score == direct for score in pooled)

    def test_model_routes_to_one_worker_for_locality(
        self, pool, fitted_tfmae, sine_series
    ):
        owner = pool.worker_for("tfmae")
        status = pool.status()
        assert status["routing"]["tfmae"] == owner
        assert "tfmae:v1" in status["workers"][owner]["resident_models"]
        others = [w for slot, w in status["workers"].items() if slot != owner]
        assert all("tfmae:v1" not in w["resident_models"] for w in others)

    def test_one_shared_segment_per_model_version(
        self, pool, fitted_tfmae, sine_series
    ):
        from repro.nn.serialization import state_layout

        nbytes, _ = state_layout(fitted_tfmae.model.state_dict())
        status = pool.status()
        assert status["shared_segments"] == {"tfmae:v1": nbytes}
        # Scoring the same model again must not publish another copy.
        pool.score("tfmae", "v1", fitted_tfmae, sine_series[-50:])
        assert pool.status()["shared_segments"] == {"tfmae:v1": nbytes}

    def test_worker_rss_reports_shared_mapping(self, pool, fitted_tfmae, sine_series):
        pool.score("tfmae", "v1", fitted_tfmae, sine_series[-50:])
        owner = pool.worker_for("tfmae")
        report = pool.worker_rss()
        assert set(report) == set(pool.status()["workers"])
        assert {"VmRSS", "RssAnon", "RssShmem"} <= set(report[owner])
        # The owning worker maps the segment; pages it touched while
        # scoring are shared, not private copies.
        assert report[owner]["RssShmem"] > 0

    def test_admission_quota_sheds_with_overloaded(self, pool, fitted_tfmae,
                                                   sine_series):
        window = sine_series[-50:]
        quota = pool.max_inflight_per_model
        with pool._lock:
            pool._inflight_by_model["tfmae"] = quota  # simulate a full model
        try:
            with pytest.raises(Overloaded):
                pool.submit("tfmae", "v1", fitted_tfmae, window)
        finally:
            with pool._lock:
                del pool._inflight_by_model["tfmae"]
        assert pool.score("tfmae", "v1", fitted_tfmae, window) is not None

    def test_status_and_metrics_surface_pool_state(self, pool, fitted_tfmae,
                                                   sine_series):
        pool.score("tfmae", "v1", fitted_tfmae, sine_series[-50:])
        status = pool.status()
        assert status["procs"] == 2
        assert status["alive"] == 2
        assert status["inflight"] == 0
        for worker in status["workers"].values():
            assert worker["breaker"] == "closed"
            assert worker["alive"]
        snapshot = pool.metrics.snapshot()
        assert snapshot["gauges"]["serve_pool_workers_alive"] == 2
        scored = [key for key in snapshot["counters"]
                  if key.startswith("serve_pool_scored_total")]
        assert scored


class TestSupervision:
    def test_kill_reroute_respawn_recover(self, fitted_tfmae, sine_series):
        window = sine_series[-50:]
        direct = float(fitted_tfmae.score_last(window[None])[0])
        with ProcessPool(procs=2, heartbeat_interval=0.1) as pool:
            assert pool.score("tfmae", "v1", fitted_tfmae, window) == direct
            victim = pool.worker_for("tfmae")
            pid = pool.kill_worker(victim)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                worker = pool.status()["workers"][victim]
                if worker["alive"] and worker["pid"] != pid:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {victim} was not respawned: {pool.status()}")
            assert pool.status()["workers"][victim]["respawns"] == 1
            # The shard routed back and scores are bitwise stable: the
            # respawned worker re-attached the same shared segment.
            assert pool.worker_for("tfmae") == victim
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    score = pool.score("tfmae", "v1", fitted_tfmae, window)
                    break
                except TransientFault:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)
            assert score == direct
            deaths = pool.metrics.snapshot()["counters"]
            assert deaths.get("serve_pool_worker_deaths_total", 0) >= 1

    def test_all_workers_down_is_retryable_not_fatal(self, fitted_tfmae,
                                                     sine_series):
        window = sine_series[-50:]
        # A slow breaker keeps the slot dead long enough to observe the
        # empty-ring path deterministically.
        with ProcessPool(procs=1, heartbeat_interval=0.1,
                         breaker_threshold=1, respawn_backoff=60.0) as pool:
            pool.score("tfmae", "v1", fitted_tfmae, window)
            pool.kill_worker("proc-0")
            deadline = time.monotonic() + 10.0
            while pool.status()["alive"] and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.status()["alive"] == 0
            with pytest.raises(TransientFault):
                pool.score("tfmae", "v1", fitted_tfmae, window)
