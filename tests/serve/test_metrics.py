"""Metrics core: counters, gauges, histograms, registry semantics."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_summary_over_known_values(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(5050.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(np.quantile(np.arange(1.0, 101.0), 0.5))
        assert summary["p99"] == pytest.approx(np.quantile(np.arange(1.0, 101.0), 0.99))

    def test_empty_histogram_reports_nan_quantiles(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert np.isnan(summary["p50"])

    def test_ring_buffer_bounds_memory_but_keeps_exact_count(self):
        histogram = Histogram(capacity=10)
        for value in range(1000):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 1000          # lifetime-exact
        assert summary["max"] == 999.0           # lifetime-exact
        # Quantiles cover the most recent `capacity` observations.
        assert summary["p50"] >= 990.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", endpoint="/score")
        second = registry.counter("requests", endpoint="/score")
        assert first is second
        assert registry.counter("requests", endpoint="/predict") is not first

    def test_label_order_is_canonical(self):
        assert metric_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"
        registry = MetricsRegistry()
        assert (registry.counter("m", b="2", a="1")
                is registry.counter("m", a="1", b="2"))

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits", endpoint="/score").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("latency", endpoint="/score").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits{endpoint=/score}"] == 3
        assert snapshot["gauges"]["depth"] == 7
        assert snapshot["histograms"]["latency{endpoint=/score}"]["count"] == 1

    def test_render_text_one_line_per_value(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        text = registry.render_text()
        assert "hits 1" in text

    def test_concurrent_creation_is_safe(self):
        registry = MetricsRegistry()
        instances = []

        def create():
            instances.append(registry.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instance is instances[0] for instance in instances)
