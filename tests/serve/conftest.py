"""Shared serving fixtures: a small fitted TFMAE and toy detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAE, TFMAEConfig
from repro.detector import BaseDetector


class AbsLastDetector(BaseDetector):
    """Toy detector: score is |value| of the first feature (instant fit)."""

    name = "abs"

    def _fit(self, train: np.ndarray) -> None:
        pass

    def score(self, series: np.ndarray) -> np.ndarray:
        return np.abs(series[:, 0])


@pytest.fixture
def toy_detector(rng) -> AbsLastDetector:
    detector = AbsLastDetector(anomaly_ratio=5.0)
    detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(500, 1)))
    return detector


@pytest.fixture(scope="module")
def sine_series() -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(600)
    return np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (600, 1))


@pytest.fixture(scope="module")
def fitted_tfmae(sine_series) -> TFMAE:
    """One small trained TFMAE shared by the serving tests (module scope:
    training dominates this package's runtime)."""
    config = TFMAEConfig(window_size=50, d_model=16, num_layers=1, num_heads=2,
                         anomaly_ratio=5.0, epochs=1, batch_size=8,
                         learning_rate=1e-3)
    detector = TFMAE(config)
    detector.fit(sine_series[:400], sine_series[400:500])
    return detector
