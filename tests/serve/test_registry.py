"""Model registry: publish/load round-trips, versioning, integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.serialization import load_metadata, save_training_state
from repro.serve import ModelNotFound, ModelRegistry, RegistryError


class TestPublish:
    def test_versions_autoincrement(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        assert registry.publish("tfmae", fitted_tfmae) == "v1"
        assert registry.publish("tfmae", fitted_tfmae) == "v2"
        assert registry.versions("tfmae") == ["v1", "v2"]
        assert registry.latest("tfmae") == "v2"

    def test_named_versions_and_immutability(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae, version="prod")
        with pytest.raises(RegistryError, match="immutable"):
            registry.publish("tfmae", fitted_tfmae, version="prod")

    def test_rejects_uncalibrated_detector(self, tmp_path, sine_series, fitted_tfmae):
        from repro.core import TFMAE

        registry = ModelRegistry(tmp_path)
        uncalibrated = TFMAE(fitted_tfmae.config)
        uncalibrated.fit(sine_series[:200])  # no validation => no threshold
        with pytest.raises(RegistryError, match="threshold"):
            registry.publish("tfmae", uncalibrated)

    def test_rejects_unknown_detector_type(self, tmp_path, toy_detector):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="codec"):
            registry.publish("toy", toy_detector)

    def test_rejects_path_traversal_names(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        for bad in ("../evil", "a/b", "", ".hidden"):
            with pytest.raises(RegistryError):
                registry.publish(bad, fitted_tfmae)

    def test_version_sorting_is_numeric(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        for _ in range(11):
            registry.publish("tfmae", fitted_tfmae)
        assert registry.latest("tfmae") == "v11"  # not lexicographic "v9"


class TestLoadRoundTrip:
    def test_loaded_model_serves_identically_without_refitting(
        self, tmp_path, fitted_tfmae, sine_series
    ):
        """The satellite contract: hyperparameters (window size, anomaly
        ratio, threshold) round-trip with the weights, so scoring through
        a loaded artifact is bitwise identical to the original."""
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        loaded, version = registry.load("tfmae")
        assert version == "v1"
        assert loaded is not fitted_tfmae
        assert loaded.config == fitted_tfmae.config
        assert loaded.config.window_size == fitted_tfmae.config.window_size
        assert loaded.anomaly_ratio == fitted_tfmae.anomaly_ratio
        assert loaded.threshold_ == fitted_tfmae.threshold_
        test = sine_series[450:]
        assert np.array_equal(loaded.score(test), fitted_tfmae.score(test))
        assert np.array_equal(loaded.predict(test), fitted_tfmae.predict(test))

    def test_score_last_round_trips_too(self, tmp_path, fitted_tfmae, sine_series):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        loaded, _ = registry.load("tfmae")
        windows = np.stack([sine_series[i : i + 50] for i in range(0, 100, 10)])
        assert np.array_equal(loaded.score_last(windows), fitted_tfmae.score_last(windows))

    def test_load_is_cached(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        first, _ = registry.load("tfmae", "v1")
        second, _ = registry.load("tfmae", "v1")
        assert first is second

    def test_cache_evicts_least_recently_used(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path, cache_size=1)
        registry.publish("tfmae", fitted_tfmae)
        registry.publish("tfmae", fitted_tfmae)
        first, _ = registry.load("tfmae", "v1")
        registry.load("tfmae", "v2")  # evicts v1
        again, _ = registry.load("tfmae", "v1")
        assert again is not first

    def test_missing_model_and_version(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ModelNotFound):
            registry.load("ghost")
        registry.publish("tfmae", fitted_tfmae)
        with pytest.raises(ModelNotFound):
            registry.load("tfmae", "v99")

    def test_describe_exposes_metadata(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        meta = registry.describe("tfmae")
        assert meta["detector"] == "TFMAE"
        assert meta["hyperparams"]["config"]["window_size"] == 50
        assert meta["hyperparams"]["threshold"] == fitted_tfmae.threshold_
        assert len(meta["fingerprint"]) == 64

    def test_models_listing(self, tmp_path, fitted_tfmae):
        registry = ModelRegistry(tmp_path)
        assert registry.models() == []
        registry.publish("b-model", fitted_tfmae)
        registry.publish("a-model", fitted_tfmae)
        assert registry.models() == ["a-model", "b-model"]


class TestIntegrity:
    def test_fingerprint_mismatch_detected(self, tmp_path, fitted_tfmae):
        """Metadata altered after publishing must not load silently."""
        registry = ModelRegistry(tmp_path)
        registry.publish("tfmae", fitted_tfmae)
        path = tmp_path / "tfmae" / "v1.npz"
        meta = load_metadata(path)
        meta["hyperparams"]["threshold"] = 0.0  # tamper without re-fingerprinting
        # Rewrite the archive with the tampered metadata but original weights.
        loaded, _ = registry.load("tfmae")
        save_training_state(path, loaded.model, metadata=meta)
        fresh = ModelRegistry(tmp_path)  # bypass the cache
        with pytest.raises(RegistryError, match="fingerprint"):
            fresh.load("tfmae")

    def test_unreadable_artifact_raises_registry_error(self, tmp_path):
        model_dir = tmp_path / "tfmae"
        model_dir.mkdir()
        (model_dir / "v1.npz").write_bytes(b"not an npz archive")
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError):
            registry.load("tfmae")
