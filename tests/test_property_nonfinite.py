"""Property tests: every detector is explicit about non-finite inputs.

Three contracts, checked for TFMAE and every registered baseline at tiny
sizes:

1. ``fit`` on data containing NaN/Inf raises a clear :class:`ValueError`
   (never trains on garbage);
2. ``score`` on data containing NaN/Inf either handles it or raises a
   clear :class:`ValueError` (never an opaque numpy error deep inside the
   model);
3. ``score`` on finite input returns finite values (the threshold
   protocol breaks down silently otherwise).

Detectors are fitted once per method (module-scoped cache) and hypothesis
drives the scoring inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BASELINE_REGISTRY
from repro.core import TFMAE, TFMAEConfig

WINDOW = 20  # divisible by DCdetector's default patch size
FEATURES = 2
TRAIN_LEN = 6 * WINDOW
METHODS = ["TFMAE"] + sorted(BASELINE_REGISTRY)

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _build(method: str):
    if method == "TFMAE":
        return TFMAE(TFMAEConfig(
            window_size=WINDOW, d_model=8, num_layers=1, num_heads=2,
            batch_size=4, epochs=1, anomaly_ratio=5.0,
        ))
    ctor = BASELINE_REGISTRY[method]
    if method in ("LOF", "IForest"):
        return ctor(anomaly_ratio=5.0, seed=0)
    return ctor(window_size=WINDOW, epochs=1, batch_size=4, anomaly_ratio=5.0, seed=0)


def _train_series() -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(TRAIN_LEN)
    base = np.sin(2 * np.pi * t / 8.0)[:, None]
    return np.repeat(base, FEATURES, axis=1) + rng.normal(0, 0.1, (TRAIN_LEN, FEATURES))


@pytest.fixture(scope="module")
def fitted_detectors():
    """One fitted instance per method, shared across the module."""
    series = _train_series()
    cache = {}
    for method in METHODS:
        detector = _build(method)
        detector.fit(series, series[: 3 * WINDOW])
        cache[method] = detector
    return cache


_bad_value = st.sampled_from([np.nan, np.inf, -np.inf])


@pytest.mark.parametrize("method", METHODS)
@given(position=st.integers(0, TRAIN_LEN - 1), feature=st.integers(0, FEATURES - 1),
       value=_bad_value)
@_SETTINGS
def test_fit_rejects_nonfinite(method, position, feature, value):
    series = _train_series()
    series[position, feature] = value
    detector = _build(method)
    with pytest.raises(ValueError):
        detector.fit(series)


@pytest.mark.parametrize("method", METHODS)
@given(position=st.integers(0, 2 * WINDOW - 1), feature=st.integers(0, FEATURES - 1),
       value=_bad_value)
@_SETTINGS
def test_score_handles_or_rejects_nonfinite(fitted_detectors, method, position,
                                            feature, value):
    series = _train_series()[: 2 * WINDOW]
    series[position, feature] = value
    detector = fitted_detectors[method]
    try:
        scores = detector.score(series)
    except ValueError as error:
        assert "NaN" in str(error) or "Inf" in str(error)
    else:
        assert np.all(np.isfinite(scores)), f"{method} silently emitted non-finite scores"


@pytest.mark.parametrize("method", METHODS)
@given(seed=st.integers(0, 1000), scale=st.floats(0.01, 10.0))
@_SETTINGS
def test_score_finite_on_finite_input(fitted_detectors, method, seed, scale):
    rng = np.random.default_rng(seed)
    series = rng.normal(0, scale, size=(2 * WINDOW, FEATURES))
    scores = fitted_detectors[method].score(series)
    assert scores.shape == (2 * WINDOW,)
    assert np.all(np.isfinite(scores)), f"{method} produced non-finite scores"
