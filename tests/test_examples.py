"""Smoke tests: the example scripts must run end to end.

Only the fastest example runs in the default suite; the rest are checked
for importability/compilability so a syntax or API drift fails fast.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_directory_populated(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert "quickstart.py" in names
        assert len(names) >= 5

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "detection:" in result.stdout
        assert "top-5 alarms" in result.stdout
