"""Graceful streaming degradation under a FaultPolicy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector import BaseDetector
from repro.robustness import FaultPolicy
from repro.streaming import StreamingDetector


class _AbsDetector(BaseDetector):
    """Score is |value| of the first feature; optionally fails on demand."""

    name = "abs"

    def __init__(self, anomaly_ratio: float = 5.0):
        super().__init__(anomaly_ratio=anomaly_ratio)
        self.fail = False

    def _fit(self, train: np.ndarray) -> None:
        pass

    def score(self, series: np.ndarray) -> np.ndarray:
        if self.fail:
            raise RuntimeError("primary detector is down")
        return np.abs(series[:, 0])


def _fitted(rng, cls=_AbsDetector) -> BaseDetector:
    detector = cls()
    detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(500, 1)))
    return detector


class TestWithoutPolicy:
    def test_nan_observation_raises_clearly(self, rng):
        stream = StreamingDetector(_fitted(rng), context=5, warmup=0)
        stream.update(np.array([0.5]))
        with pytest.raises(ValueError, match="NaN/Inf"):
            stream.update(np.array([np.nan]))

    def test_dim_mismatch_raises_clearly(self, rng):
        stream = StreamingDetector(_fitted(rng), context=5, warmup=0)
        stream.update(np.array([0.5]))
        with pytest.raises(ValueError, match="features"):
            stream.update(np.array([0.5, 0.7]))


class TestFaultPolicy:
    def test_invalid_options(self, rng):
        with pytest.raises(ValueError):
            FaultPolicy(clamp_sigma=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(recovery_every=0)
        uncalibrated = _AbsDetector()
        uncalibrated.fit(rng.normal(size=(50, 1)))
        with pytest.raises(ValueError, match="calibrated"):
            FaultPolicy(fallback=uncalibrated)

    def test_nan_is_imputed_from_buffer(self, rng):
        stream = StreamingDetector(_fitted(rng), context=5, warmup=0,
                                   policy=FaultPolicy())
        for value in [1.0, 1.2, 0.8, 1.1]:
            stream.update(np.array([value]))
        event = stream.update(np.array([np.nan]))
        assert "imputed" in event.flags
        assert event.degraded
        # Imputed from the buffer median, so the score is in-distribution.
        assert np.isfinite(event.score)
        assert 0.8 <= event.score <= 1.2

    def test_rejected_when_imputation_disabled(self, rng):
        stream = StreamingDetector(_fitted(rng), context=5, warmup=0,
                                   policy=FaultPolicy(impute_nonfinite=False))
        stream.update(np.array([1.0]))
        event = stream.update(np.array([np.inf]))
        assert event.flags == ("rejected_nonfinite",)
        assert np.isnan(event.score) and not event.is_anomaly
        # Rejected observations never enter the scoring buffer.
        assert len(stream._buffer) == 1
        assert stream.observations_seen == 2

    def test_dim_mismatch_becomes_flagged_event(self, rng):
        stream = StreamingDetector(_fitted(rng), context=5, warmup=0,
                                   policy=FaultPolicy())
        stream.update(np.array([1.0]))
        event = stream.update(np.array([1.0, 2.0]))
        assert event.flags == ("dim_mismatch",)
        assert np.isnan(event.score)
        # The stream keeps working with well-formed observations.
        follow_up = stream.update(np.array([0.9]))
        assert np.isfinite(follow_up.score)

    def test_clamping_defuses_corrupt_spikes(self, rng):
        policy = FaultPolicy(clamp_sigma=10.0)
        stream = StreamingDetector(_fitted(rng), context=10, warmup=0, policy=policy)
        for _ in range(10):
            stream.update(rng.normal(size=1))
        event = stream.update(np.array([1e9]))
        assert "clamped" in event.flags
        assert np.isfinite(event.score)
        assert event.score < 1e6

    def test_fallback_takes_over_and_recovers(self, rng):
        primary = _fitted(rng)
        fallback = _fitted(rng)
        policy = FaultPolicy(fallback=fallback, recovery_every=3)
        stream = StreamingDetector(primary, context=5, warmup=0, policy=policy)

        healthy = stream.update(np.array([0.5]))
        assert healthy.flags == ()

        primary.fail = True
        degraded = stream.update(np.array([0.5]))
        assert "primary_error" in degraded.flags
        assert "fallback" in degraded.flags
        assert np.isfinite(degraded.score)
        assert stream.degraded

        # While degraded, updates keep flowing through the fallback.
        for _ in range(2):
            event = stream.update(np.array([0.4]))
            assert "fallback" in event.flags

        # Heal the primary; the next recovery probe flips back.
        primary.fail = False
        flags = []
        for _ in range(policy.recovery_every + 1):
            flags.append(stream.update(np.array([0.4])).flags)
        assert any("recovered" in f for f in flags)
        assert not stream.degraded

    def test_degraded_without_fallback_emits_nan_events(self, rng):
        primary = _fitted(rng)
        stream = StreamingDetector(primary, context=5, warmup=0, policy=FaultPolicy())
        primary.fail = True
        event = stream.update(np.array([0.5]))
        assert "primary_error" in event.flags
        assert np.isnan(event.score) and not event.is_anomaly

    def test_full_stream_with_faults_never_raises(self, rng):
        """End to end: a stream riddled with every malformation still yields
        one event per observation."""
        fallback = _fitted(rng)
        policy = FaultPolicy(clamp_sigma=20.0, fallback=fallback)
        stream = StreamingDetector(_fitted(rng), context=10, warmup=5, policy=policy)
        observations = rng.normal(size=(60, 1))
        observations[10] = np.nan
        observations[20] = np.inf
        observations[30] = 1e12
        events = stream.update_many(observations)
        assert len(events) == 60
        scored = [e for e in events if np.isfinite(e.score)]
        assert len(scored) >= 50
