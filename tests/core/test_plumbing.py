"""Configuration plumbing: every TFMAEConfig switch must reach the
component it controls."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAEConfig, TFMAEModel


def _config(**overrides) -> TFMAEConfig:
    base = dict(window_size=30, d_model=16, num_layers=1, num_heads=2)
    base.update(overrides)
    return TFMAEConfig(**base)


class TestMaskerPlumbing:
    @pytest.mark.parametrize("strategy", ["cov", "std", "random", "none"])
    def test_temporal_strategy_reaches_masker(self, strategy):
        model = TFMAEModel(1, _config(temporal_mask_strategy=strategy))
        assert model.temporal.masker.strategy == strategy

    @pytest.mark.parametrize("strategy", ["amplitude", "high", "random", "none"])
    def test_frequency_strategy_reaches_masker(self, strategy):
        model = TFMAEModel(1, _config(frequency_mask_strategy=strategy))
        assert model.frequency.masker.strategy == strategy

    def test_ratios_reach_maskers(self):
        model = TFMAEModel(1, _config(temporal_mask_ratio=33.0, frequency_mask_ratio=44.0))
        assert model.temporal.masker.ratio == 33.0
        assert model.frequency.masker.ratio == 44.0

    def test_cov_window_reaches_masker(self):
        model = TFMAEModel(1, _config(cov_window=7))
        assert model.temporal.masker.window == 7

    def test_fft_flag_reaches_masker(self):
        model = TFMAEModel(1, _config(use_fft_acceleration=False))
        assert model.temporal.masker.use_fft is False


class TestArchitecturePlumbing:
    def test_layer_count(self):
        model = TFMAEModel(1, _config(num_layers=1))
        assert len(model.temporal.encoder) == 1
        assert len(model.temporal.decoder) == 1
        assert len(model.frequency.decoder) == 1

    def test_ffn_dim_override(self):
        model = TFMAEModel(1, _config(ffn_dim=8))
        layer = model.frequency.decoder[0]
        assert layer.ffn[0].out_features == 8

    def test_seed_controls_initialisation(self, rng):
        a = TFMAEModel(2, _config(seed=1))
        b = TFMAEModel(2, _config(seed=1))
        c = TFMAEModel(2, _config(seed=2))
        wa = a.temporal.projection.weight.data
        assert np.array_equal(wa, b.temporal.projection.weight.data)
        assert not np.array_equal(wa, c.temporal.projection.weight.data)

    def test_parameter_count_dual_vs_single(self):
        dual = TFMAEModel(2, _config())
        single = TFMAEModel(2, _config(use_frequency_branch=False))
        # The single-branch model gains a reconstruction head but loses a
        # whole branch — far fewer parameters overall.
        assert single.num_parameters() < dual.num_parameters()


class TestPositionalEncodingPlacement:
    def test_mask_tokens_carry_position_information(self, rng):
        """Two windows identical except for WHERE the masked positions sit
        must produce different decoder inputs — the PE is added at the
        masked tokens' original locations (paper Section IV-B.2)."""
        from repro.core.model import TemporalBranch

        config = _config(temporal_mask_ratio=20.0)
        branch = TemporalBranch(1, config, np.random.default_rng(0))
        # Craft windows whose CoV peaks at different places.
        quiet = np.zeros((1, 30, 1)) + 1.0
        early_spike = quiet.copy()
        early_spike[0, 3, 0] = 30.0
        late_spike = quiet.copy()
        late_spike[0, 25, 0] = 30.0
        early_mask = branch.masker(early_spike).mask
        late_mask = branch.masker(late_spike).mask
        assert not np.array_equal(early_mask, late_mask)
