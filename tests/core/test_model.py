"""TFMAE model tests: branch behaviour, loss structure, scores, ablations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAEConfig, TFMAEModel
from repro.core.model import FrequencyBranch, TemporalBranch


def _small_config(**overrides) -> TFMAEConfig:
    base = dict(
        window_size=40, d_model=16, num_layers=1, num_heads=2,
        temporal_mask_ratio=25.0, frequency_mask_ratio=25.0,
        batch_size=4, epochs=1,
    )
    base.update(overrides)
    return TFMAEConfig(**base)


@pytest.fixture
def windows(rng):
    return rng.normal(size=(3, 40, 2))


class TestBranches:
    def test_temporal_branch_shape(self, windows, rng):
        branch = TemporalBranch(2, _small_config(), rng)
        assert branch(windows).shape == (3, 40, 16)

    def test_frequency_branch_shape(self, windows, rng):
        branch = FrequencyBranch(2, _small_config(), rng)
        assert branch(windows).shape == (3, 40, 16)

    def test_temporal_branch_no_encoder(self, windows, rng):
        branch = TemporalBranch(2, _small_config(use_temporal_encoder=False), rng)
        assert branch.encoder is None
        assert branch(windows).shape == (3, 40, 16)

    def test_temporal_branch_no_decoder(self, windows, rng):
        branch = TemporalBranch(2, _small_config(use_temporal_decoder=False), rng)
        assert branch.decoder is None
        assert branch(windows).shape == (3, 40, 16)

    def test_temporal_branch_zero_mask_ratio(self, windows, rng):
        branch = TemporalBranch(2, _small_config(temporal_mask_ratio=0.0), rng)
        assert branch(windows).shape == (3, 40, 16)

    def test_temporal_branch_full_mask_ratio(self, windows, rng):
        branch = TemporalBranch(2, _small_config(temporal_mask_ratio=100.0), rng)
        assert branch(windows).shape == (3, 40, 16)

    def test_frequency_branch_no_decoder(self, windows, rng):
        branch = FrequencyBranch(2, _small_config(use_frequency_decoder=False), rng)
        assert branch.decoder is None
        assert branch(windows).shape == (3, 40, 16)

    def test_mask_token_receives_gradient(self, windows, rng):
        model = TFMAEModel(2, _small_config())
        loss, _ = model.loss(windows)
        loss.backward()
        assert model.temporal.mask_token.grad is not None
        assert model.frequency.mask_token_re.grad is not None
        assert model.frequency.mask_token_im.grad is not None


class TestModelForward:
    def test_dual_output_shapes(self, windows):
        model = TFMAEModel(2, _small_config())
        p, f = model(windows)
        assert p.shape == (3, 40, 16)
        assert f.shape == (3, 40, 16)

    def test_rejects_wrong_feature_count(self, rng):
        model = TFMAEModel(2, _small_config())
        with pytest.raises(ValueError):
            model(rng.normal(size=(1, 40, 5)))

    def test_rejects_unbatched_input(self, rng):
        model = TFMAEModel(2, _small_config())
        with pytest.raises(ValueError):
            model(rng.normal(size=(40, 2)))

    def test_single_branch_returns_none(self, windows):
        temporal_only = TFMAEModel(2, _small_config(use_frequency_branch=False))
        p, f = temporal_only(windows)
        assert p is not None and f is None

        frequency_only = TFMAEModel(2, _small_config(use_temporal_branch=False))
        p, f = frequency_only(windows)
        assert p is None and f is not None


class TestLoss:
    def test_adversarial_loss_is_zero_valued_but_not_zero_gradient(self, windows):
        """min - max of equal values is 0, yet gradients are live (Eq. 15)."""
        model = TFMAEModel(2, _small_config())
        loss, metrics = model.loss(windows)
        assert loss.item() == pytest.approx(0.0, abs=1e-10)
        assert metrics["minimise"] > 0
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert sum(float(np.abs(g).sum()) for g in grads) > 0

    def test_plain_contrastive_loss_positive(self, windows):
        model = TFMAEModel(2, _small_config(adversarial=False))
        loss, metrics = model.loss(windows)
        assert loss.item() > 0
        assert "contrastive" in metrics

    def test_adversarial_gradient_direction(self, windows):
        """Standard Eq. 15: only the frequency branch minimises toward the
        (frozen) temporal anchor; reversed swaps the roles."""
        standard = TFMAEModel(2, _small_config())
        loss, _ = standard.loss(windows)
        loss.backward()
        freq_grad = float(np.abs(standard.frequency.projection.weight.grad).sum())
        assert freq_grad > 0

        reversed_model = TFMAEModel(2, _small_config(reversed_adversarial=True))
        loss, _ = reversed_model.loss(windows)
        loss.backward()
        temp_grad = float(np.abs(reversed_model.temporal.projection.weight.grad).sum())
        assert temp_grad > 0

    def test_single_branch_falls_back_to_reconstruction(self, windows):
        model = TFMAEModel(2, _small_config(use_frequency_branch=False))
        loss, metrics = model.loss(windows)
        assert "reconstruction_mse" in metrics
        assert loss.item() > 0


class TestScoring:
    def test_score_shape_and_finite(self, windows):
        model = TFMAEModel(2, _small_config())
        scores = model.score_windows(windows)
        assert scores.shape == (3, 40)
        assert np.all(np.isfinite(scores))

    def test_scores_non_negative(self, windows):
        model = TFMAEModel(2, _small_config())
        assert np.all(model.score_windows(windows) >= -1e-10)

    def test_single_branch_scores(self, windows):
        model = TFMAEModel(2, _small_config(use_temporal_branch=False))
        scores = model.score_windows(windows)
        assert scores.shape == (3, 40)
        assert np.all(scores >= 0)

    def test_scoring_does_not_build_graph(self, windows):
        model = TFMAEModel(2, _small_config())
        model.score_windows(windows)
        assert all(p.grad is None for p in model.parameters())

    def test_deterministic_given_seed(self, windows):
        a = TFMAEModel(2, _small_config(seed=7)).score_windows(windows)
        b = TFMAEModel(2, _small_config(seed=7)).score_windows(windows)
        np.testing.assert_array_equal(a, b)


class TestAblationVariants:
    """Every Table IV/V variant must build, train a step, and score."""

    @pytest.mark.parametrize("overrides", [
        {"adversarial": False},
        {"reversed_adversarial": True},
        {"use_frequency_branch": False},
        {"use_frequency_decoder": False},
        {"use_temporal_branch": False},
        {"use_temporal_encoder": False},
        {"use_temporal_decoder": False},
        {"temporal_mask_strategy": "none"},
        {"temporal_mask_strategy": "std"},
        {"temporal_mask_strategy": "random"},
        {"frequency_mask_strategy": "none"},
        {"frequency_mask_strategy": "high"},
        {"frequency_mask_strategy": "random"},
        {"use_fft_acceleration": False},
    ])
    def test_variant_trains_and_scores(self, windows, overrides):
        model = TFMAEModel(2, _small_config(**overrides))
        loss, _ = model.loss(windows)
        loss.backward()
        scores = model.score_windows(windows)
        assert scores.shape == (3, 40)
        assert np.all(np.isfinite(scores))
