"""Batched full-series scoring: equivalence and the compute-dtype policy.

The zero-copy batched scorer (``score_series`` over strided window views,
chunked by :func:`repro.datasets.windows.batched_window_scores`) must be
*exactly* interchangeable with scoring one window at a time — bitwise in
float64, since every model op is row-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAE, TFMAEConfig


def _sine_series(rng, length, features=1):
    t = np.arange(length, dtype=np.float64)
    base = np.sin(2 * np.pi * t / 37.0)[:, None]
    return np.repeat(base, features, axis=1) + 0.05 * rng.normal(
        size=(length, features)
    )


@pytest.fixture(scope="module")
def fitted(fast_config):
    rng = np.random.default_rng(0)
    detector = TFMAE(fast_config)
    detector.fit(_sine_series(rng, 400))
    return detector


@pytest.fixture(scope="module")
def fast_config():
    return TFMAEConfig(
        window_size=50,
        d_model=16,
        num_layers=1,
        num_heads=2,
        temporal_mask_ratio=30.0,
        frequency_mask_ratio=30.0,
        anomaly_ratio=5.0,
        batch_size=8,
        epochs=1,
        learning_rate=1e-3,
    )


@pytest.mark.slow
class TestBatchedEqualsLoop:
    def test_full_series_bitwise_vs_per_window_loop(self, fitted):
        """2k-point acceptance: chunked batched score == one-window-at-a-time."""
        rng = np.random.default_rng(1)
        series = _sine_series(rng, 2000)
        size = fitted.config.window_size

        batched = fitted.score(series)

        # Per-window reference loop: the same coverage scheme score_series
        # uses (non-overlapping prefix + end-aligned tail), one window per
        # model call.
        loop = np.empty(len(series), dtype=np.float64)
        covered = (len(series) // size) * size
        for start in range(0, covered, size):
            window = series[start : start + size][None]
            loop[start : start + size] = fitted.model.score_windows(window)[0]
        if covered < len(series):
            tail = fitted.model.score_windows(series[-size:][None])[0]
            loop[covered:] = tail[size - (len(series) - covered) :]

        assert batched.dtype == np.float64
        assert np.array_equal(batched, loop)  # bitwise, not just atol

    def test_batch_size_invariance(self, fitted):
        rng = np.random.default_rng(2)
        series = _sine_series(rng, 500)
        one = TFMAE(fitted.config.with_overrides(batch_size=1))
        one.model, one._fitted = fitted.model, True
        big = TFMAE(fitted.config.with_overrides(batch_size=256))
        big.model, big._fitted = fitted.model, True
        assert np.array_equal(one.score(series), big.score(series))

    def test_score_last_bitwise_vs_sequential(self, fitted):
        rng = np.random.default_rng(3)
        windows = np.stack(
            [_sine_series(rng, fitted.config.window_size) for _ in range(9)]
        )
        batched = fitted.score_last(windows)
        sequential = np.array([fitted.score(w)[-1] for w in windows])
        assert np.array_equal(batched, sequential)

    def test_score_last_long_windows_use_tail(self, fitted):
        rng = np.random.default_rng(4)
        size = fitted.config.window_size
        windows = np.stack([_sine_series(rng, size + 20) for _ in range(4)])
        batched = fitted.score_last(windows)
        sequential = np.array([fitted.score(w)[-1] for w in windows])
        assert np.array_equal(batched, sequential)


class TestChunkBufferReuse:
    """Regression tests for the preallocated-output chunking scheme."""

    def test_multi_chunk_writes_one_preallocated_output(self):
        from repro.datasets.windows import batched_window_scores

        windows = np.arange(10.0)[:, None, None] + np.zeros((10, 4, 1))
        calls = []

        def score_fn(chunk):
            calls.append(len(chunk))
            return chunk[:, :, 0] * 2.0

        out = batched_window_scores(windows, score_fn, batch_size=3)
        assert calls == [3, 3, 3, 1]
        assert out.shape == (10, 4)
        assert np.array_equal(out, windows[:, :, 0] * 2.0)
        # One output array regardless of chunk count: rows from different
        # chunks share the same base allocation.
        assert out.flags.owndata

    def test_batch_of_one_returns_score_fn_result_unchanged(self):
        """The serving hot path (single window, single chunk) must hand
        back ``score_fn``'s own array — zero copies on top of the model."""
        from repro.datasets.windows import batched_window_scores

        produced = {}

        def score_fn(chunk):
            produced["scores"] = np.asarray(chunk[:, :, 0] * 3.0)
            return produced["scores"]

        windows = np.ones((1, 5, 1))
        out = batched_window_scores(windows, score_fn, batch_size=64)
        assert out is produced["scores"]

    def test_single_full_chunk_is_zero_copy_too(self):
        from repro.datasets.windows import batched_window_scores

        produced = {}

        def score_fn(chunk):
            produced["scores"] = np.asarray(chunk[:, :, 0])
            return produced["scores"]

        windows = np.ones((8, 5, 1))
        assert batched_window_scores(windows, score_fn, batch_size=8) is (
            produced["scores"]
        )

    def test_empty_input(self):
        from repro.datasets.windows import batched_window_scores

        out = batched_window_scores(
            np.empty((0, 5, 1)), lambda chunk: chunk[:, :, 0], batch_size=4
        )
        assert out.shape == (0,)


class TestComputeDtypePolicy:
    def test_float32_fit_and_score(self, fast_config):
        """End-to-end smoke at reduced precision (the production path)."""
        rng = np.random.default_rng(5)
        series = _sine_series(rng, 300)
        detector = TFMAE(fast_config.with_overrides(compute_dtype="float32"))
        detector.fit(series)

        assert all(
            p.data.dtype == np.float32 for p in detector.model.parameters()
        )
        scores = detector.score(_sine_series(rng, 200))
        # Scores come back in float64 regardless of the compute dtype.
        assert scores.dtype == np.float64
        assert np.all(np.isfinite(scores))
        assert scores.shape == (200,)

    def test_float32_tracks_float64_scores(self, fast_config):
        """Same seed, both precisions: scores agree to float32 resolution."""
        rng = np.random.default_rng(6)
        train = _sine_series(rng, 300)
        test = _sine_series(rng, 150)
        ref = TFMAE(fast_config).fit(train).score(test)
        fast = (
            TFMAE(fast_config.with_overrides(compute_dtype="float32"))
            .fit(train)
            .score(test)
        )
        assert np.all(np.isfinite(fast))
        # Loose tolerance: one epoch of float32 training drifts weights
        # slightly, but the score profile must stay aligned.
        correlation = np.corrcoef(ref, fast)[0, 1]
        assert correlation > 0.99

    def test_invalid_compute_dtype_rejected(self, fast_config):
        with pytest.raises(ValueError, match="compute_dtype"):
            fast_config.with_overrides(compute_dtype="float16")
