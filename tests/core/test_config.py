"""TFMAE configuration tests: validation, presets, overrides."""

from __future__ import annotations

import pytest

from repro.core import PAPER_PRESETS, TFMAEConfig, preset_for


class TestValidation:
    def test_defaults_match_paper(self):
        config = TFMAEConfig()
        assert config.window_size == 100
        assert config.d_model == 128
        assert config.num_layers == 3
        assert config.learning_rate == 1e-4
        assert config.epochs == 1
        assert config.batch_size == 64
        assert config.cov_window == 10

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            TFMAEConfig(window_size=1)

    def test_rejects_out_of_range_ratios(self):
        with pytest.raises(ValueError):
            TFMAEConfig(temporal_mask_ratio=101.0)
        with pytest.raises(ValueError):
            TFMAEConfig(frequency_mask_ratio=-5.0)

    def test_rejects_removing_both_branches(self):
        with pytest.raises(ValueError):
            TFMAEConfig(use_temporal_branch=False, use_frequency_branch=False)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            TFMAEConfig(d_model=100, num_heads=3)

    def test_with_overrides_returns_new_instance(self):
        base = TFMAEConfig()
        changed = base.with_overrides(d_model=64, num_heads=4)
        assert changed.d_model == 64
        assert base.d_model == 128

    def test_frozen(self):
        with pytest.raises(Exception):
            TFMAEConfig().d_model = 7  # type: ignore[misc]


class TestPresets:
    def test_every_paper_dataset_has_a_preset(self):
        for name in ("SWaT", "SMD", "SMAP", "PSM", "MSL"):
            assert name in PAPER_PRESETS

    def test_fig6_ratios(self):
        # Optimal masking ratios reported in the paper (Section V-E).
        assert PAPER_PRESETS["SWaT"]["temporal_mask_ratio"] == 25.0
        assert PAPER_PRESETS["SMD"]["temporal_mask_ratio"] == 5.0
        assert PAPER_PRESETS["SMAP"]["temporal_mask_ratio"] == 65.0
        assert PAPER_PRESETS["PSM"]["frequency_mask_ratio"] == 10.0
        assert PAPER_PRESETS["MSL"]["frequency_mask_ratio"] == 40.0

    def test_threshold_ratios(self):
        # Section V-A.4: r = 0.9 (MSL, PSM), 0.75 (SMAP), 0.45 (SMD), 0.3 (SWaT).
        assert PAPER_PRESETS["MSL"]["anomaly_ratio"] == 0.9
        assert PAPER_PRESETS["PSM"]["anomaly_ratio"] == 0.9
        assert PAPER_PRESETS["SMAP"]["anomaly_ratio"] == 0.75
        assert PAPER_PRESETS["SMD"]["anomaly_ratio"] == 0.45
        assert PAPER_PRESETS["SWaT"]["anomaly_ratio"] == 0.3

    def test_preset_for_applies_values(self):
        config = preset_for("SWaT")
        assert config.temporal_mask_ratio == 25.0
        assert config.anomaly_ratio == 0.3

    def test_preset_for_unknown_dataset_uses_defaults(self):
        config = preset_for("MyCustomDataset")
        assert config == TFMAEConfig()

    def test_preset_for_overrides_win(self):
        config = preset_for("SWaT", temporal_mask_ratio=10.0)
        assert config.temporal_mask_ratio == 10.0
        assert config.anomaly_ratio == 0.3

    def test_preset_for_respects_base(self):
        base = TFMAEConfig(d_model=32, num_heads=4)
        config = preset_for("SMD", base=base)
        assert config.d_model == 32
        assert config.temporal_mask_ratio == 5.0
