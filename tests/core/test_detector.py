"""End-user detector tests: the fit/score/predict pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAE, TFMAEConfig


def _fast_config(**overrides) -> TFMAEConfig:
    base = dict(window_size=25, d_model=8, num_layers=1, num_heads=2,
                temporal_mask_ratio=30.0, frequency_mask_ratio=30.0,
                anomaly_ratio=5.0, batch_size=8, epochs=1, learning_rate=1e-3)
    base.update(overrides)
    return TFMAEConfig(**base)


class TestLifecycle:
    def test_unfitted_raises(self, rng):
        detector = TFMAE(_fast_config())
        with pytest.raises(RuntimeError):
            detector.score(rng.normal(size=(50, 1)))
        with pytest.raises(RuntimeError):
            detector.predict(rng.normal(size=(50, 1)))

    def test_predict_without_threshold_raises(self, rng):
        detector = TFMAE(_fast_config())
        detector.fit(rng.normal(size=(100, 1)))  # no validation split
        with pytest.raises(RuntimeError):
            detector.predict(rng.normal(size=(50, 1)))

    def test_fit_with_validation_sets_threshold(self, rng):
        detector = TFMAE(_fast_config())
        detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(50, 1)))
        assert detector.threshold_ is not None

    def test_fit_rejects_1d_train(self, rng):
        with pytest.raises(ValueError):
            TFMAE(_fast_config()).fit(rng.normal(size=100))

    def test_score_length_matches_series(self, rng):
        detector = TFMAE(_fast_config())
        detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(50, 1)))
        for length in (25, 50, 60, 99):
            assert detector.score(rng.normal(size=(length, 1))).shape == (length,)

    def test_score_shorter_than_window(self, rng):
        detector = TFMAE(_fast_config())
        detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(50, 1)))
        assert detector.score(rng.normal(size=(10, 1))).shape == (10,)

    def test_predict_is_binary(self, rng):
        detector = TFMAE(_fast_config())
        detector.fit(rng.normal(size=(100, 1)), rng.normal(size=(50, 1)))
        labels = detector.predict(rng.normal(size=(75, 1)))
        assert set(np.unique(labels)).issubset({0, 1})

    def test_anomaly_ratio_comes_from_config(self):
        detector = TFMAE(_fast_config(anomaly_ratio=1.5))
        assert detector.anomaly_ratio == 1.5

    def test_training_log_exposed(self, rng):
        detector = TFMAE(_fast_config())
        detector.fit(rng.normal(size=(100, 1)))
        assert detector.training_log is not None
        assert detector.training_log.summary()["batches"] > 0


class TestCheckpointing:
    def test_saved_model_scores_identically(self, rng, tmp_path):
        from repro.nn import load_model, save_model

        series = rng.normal(size=(150, 2))
        detector = TFMAE(_fast_config())
        detector.fit(series, rng.normal(size=(50, 2)))
        path = tmp_path / "tfmae.npz"
        save_model(detector.model, path)

        clone = TFMAE(_fast_config())
        clone.fit(series[:50], rng.normal(size=(50, 2)))  # different weights
        load_model(clone.model, path)
        clone.threshold_ = detector.threshold_

        probe = rng.normal(size=(75, 2))
        np.testing.assert_allclose(clone.score(probe), detector.score(probe))
        np.testing.assert_array_equal(clone.predict(probe), detector.predict(probe))


class TestDetectionQuality:
    def test_detects_planted_spikes(self):
        """TFMAE must score obvious global anomalies above normal points."""
        rng = np.random.default_rng(0)
        t = np.arange(1500)
        base = np.sin(2 * np.pi * t / 25.0)
        train = (base[:800] + rng.normal(0, 0.05, 800))[:, None]
        val = (base[800:1000] + rng.normal(0, 0.05, 200))[:, None]
        test = (base[1000:] + rng.normal(0, 0.05, 500))[:, None]
        spikes = [50, 180, 320, 440]
        test[spikes, 0] += 8.0

        detector = TFMAE(_fast_config(epochs=4))
        detector.fit(train, val)
        scores = detector.score(test)
        normal_mean = np.delete(scores, spikes).mean()
        spike_mean = scores[spikes].mean()
        assert spike_mean > 1.5 * normal_mean
