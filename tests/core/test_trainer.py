"""Trainer tests: schedules, logging, input validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAEConfig, TFMAEModel, TFMAETrainer


def _config(**overrides) -> TFMAEConfig:
    base = dict(window_size=20, d_model=8, num_layers=1, num_heads=2,
                batch_size=4, epochs=2, learning_rate=1e-3)
    base.update(overrides)
    return TFMAEConfig(**base)


class TestTrainer:
    def test_logs_every_batch(self, rng):
        config = _config()
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model)
        log = trainer.fit(rng.normal(size=(200, 1)))
        # 200/20 = 10 windows, batch 4 -> 3 batches per epoch, 2 epochs.
        assert len(log.losses) == 6
        assert log.summary()["batches"] == 6

    def test_training_moves_parameters(self, rng):
        config = _config(adversarial=False)
        model = TFMAEModel(1, config)
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        TFMAETrainer(model).fit(rng.normal(size=(200, 1)))
        moved = any(
            not np.allclose(before[name], p.data)
            for name, p in model.named_parameters()
        )
        assert moved

    def test_plain_contrastive_loss_decreases(self, rng):
        config = _config(adversarial=False, epochs=10)
        model = TFMAEModel(1, config)
        log = TFMAETrainer(model).fit(np.sin(np.arange(400) / 5.0)[:, None])
        first = np.mean(log.losses[:3])
        last = np.mean(log.losses[-3:])
        assert last < first

    def test_model_left_in_eval_mode(self, rng):
        model = TFMAEModel(1, _config())
        TFMAETrainer(model).fit(rng.normal(size=(100, 1)))
        assert not model.training

    def test_short_series_rejected(self, rng):
        model = TFMAEModel(1, _config())
        with pytest.raises(ValueError):
            TFMAETrainer(model).fit(rng.normal(size=(5, 1)))

    def test_empty_log_summary(self):
        from repro.core.trainer import TrainingLog
        assert TrainingLog().summary() == {"batches": 0}

    def test_early_stopping_halts_on_plateau(self, rng):
        """With patience 1, a run whose tracked loss cannot improve
        (constant data -> loss plateau) stops well before the epoch cap."""
        series = np.zeros((200, 1)) + rng.normal(0, 1e-9, (200, 1))
        model = TFMAEModel(1, _config(epochs=30, early_stop_patience=1))
        log = TFMAETrainer(model).fit(series)
        batches_per_epoch = 3  # 10 windows / batch 4
        assert len(log.losses) < 30 * batches_per_epoch

    def test_early_stopping_disabled_by_default(self, rng):
        model = TFMAEModel(1, _config(epochs=4))
        log = TFMAETrainer(model).fit(rng.normal(size=(200, 1)))
        assert len(log.losses) == 4 * 3

    def test_shuffle_off_is_deterministic(self, rng):
        series = rng.normal(size=(100, 1))
        logs = []
        for _ in range(2):
            model = TFMAEModel(1, _config(seed=3))
            logs.append(TFMAETrainer(model).fit(series, shuffle=False).losses)
        np.testing.assert_allclose(logs[0], logs[1])


class TestSyntheticProbe:
    def test_probe_labels_mark_corruptions(self, rng):
        from repro.core.trainer import build_synthetic_probe

        validation = rng.normal(size=(120, 3))
        windows, labels = build_synthetic_probe(validation, 30, rng)
        assert windows.shape == (4, 30, 3)
        assert labels.shape == (4, 30)
        clean = np.stack(np.split(validation, 4))
        changed = np.any(windows != clean, axis=2)
        # Every modified position is labelled anomalous.
        assert np.all(labels[changed] == 1)
        # Both anomaly families present: isolated points and a segment.
        assert labels.sum() > 4

    def test_probe_requires_full_window(self, rng):
        from repro.core.trainer import build_synthetic_probe

        with pytest.raises(ValueError):
            build_synthetic_probe(rng.normal(size=(10, 1)), 30, rng)

    def test_snapshot_selection_restores_best_weights(self, rng):
        """With selection on, final weights come from the best-probe
        epoch, so re-scoring the probe with the final model must match
        the best AUC seen during training."""
        from repro.core.trainer import build_synthetic_probe
        from repro.metrics import roc_auc

        series = np.sin(np.arange(400) / 5.0)[:, None] + rng.normal(0, 0.05, (400, 1))
        validation = series[300:]
        config = _config(epochs=4, select_best_epoch=True, adversarial=False)
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model)
        trainer.fit(series[:300], validation=validation)

        probe = build_synthetic_probe(validation, config.window_size,
                                      np.random.default_rng(config.seed + 1))
        final_auc = roc_auc(model.score_windows(probe[0]).reshape(-1),
                            probe[1].reshape(-1))
        # Retrain without selection, tracking every epoch's AUC.
        model2 = TFMAEModel(1, config.with_overrides(select_best_epoch=False))
        trainer2 = TFMAETrainer(model2)
        aucs = []
        windows = np.stack(np.split(series[:300], 300 // config.window_size))
        rng2 = np.random.default_rng(config.seed)
        for _ in range(config.epochs):
            order = rng2.permutation(windows.shape[0])
            for start in range(0, len(order), config.batch_size):
                batch = windows[order[start : start + config.batch_size]]
                loss, _ = model2.loss(batch)
                trainer2.optimizer.zero_grad()
                loss.backward()
                trainer2.optimizer.step()
            model2.eval()
            aucs.append(roc_auc(model2.score_windows(probe[0]).reshape(-1),
                                probe[1].reshape(-1)))
            model2.train()
        assert final_auc == pytest.approx(max(aucs), abs=1e-9)

    def test_selection_without_validation_is_noop(self, rng):
        config = _config(epochs=2, select_best_epoch=True)
        model = TFMAEModel(1, config)
        log = TFMAETrainer(model).fit(rng.normal(size=(100, 1)))  # no validation
        assert log.summary()["batches"] > 0
