"""Fault-tolerant training: checkpoint/resume and divergence guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAEConfig
from repro.core.model import TFMAEModel
from repro.core.trainer import TFMAETrainer
from repro.nn.serialization import CheckpointError
from repro.robustness import CheckpointManager, TrainingDivergedError


def _series(length: int = 400) -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(length)
    return np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (length, 1))


def _config(**overrides) -> TFMAEConfig:
    base = dict(window_size=50, d_model=16, num_layers=1, num_heads=2,
                batch_size=4, epochs=4, learning_rate=1e-3)
    base.update(overrides)
    return TFMAEConfig(**base)


def _train(config: TFMAEConfig, series: np.ndarray, validation=None) -> tuple[TFMAEModel, TFMAETrainer]:
    model = TFMAEModel(1, config)
    trainer = TFMAETrainer(model, config)
    trainer.fit(series, validation=validation)
    return model, trainer


def _states_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestCheckpointResume:
    def test_resume_is_bitwise_identical(self, tmp_path):
        """Interrupt after 2 of 4 epochs, resume, and land on exactly the
        weights of an uninterrupted 4-epoch run (RNG/optimizer/counters all
        restored)."""
        series = _series()
        reference, _ = _train(_config(select_best_epoch=True), series,
                              validation=series[:150])

        part1 = _config(select_best_epoch=True, epochs=2, checkpoint_dir=str(tmp_path))
        _train(part1, series, validation=series[:150])

        part2 = _config(select_best_epoch=True, epochs=4,
                        checkpoint_dir=str(tmp_path), resume=True)
        model = TFMAEModel(1, part2)
        trainer = TFMAETrainer(model, part2)
        log = trainer.fit(series, validation=series[:150])

        assert log.resumed
        assert _states_equal(reference.state_dict(), model.state_dict())

    def test_kill_mid_epoch_resumes_from_last_checkpoint(self, tmp_path):
        """A crash mid-epoch leaves the last epoch-boundary checkpoint
        intact; resuming from it reproduces the uninterrupted run."""
        series = _series()
        reference, _ = _train(_config(), series)

        config = _config(checkpoint_dir=str(tmp_path))
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model, config)
        original_loss = model.loss
        calls = {"n": 0}

        def crashing_loss(batch):
            calls["n"] += 1
            if calls["n"] == 5:  # partway into the second epoch
                raise KeyboardInterrupt("simulated SIGINT")
            return original_loss(batch)

        model.loss = crashing_loss
        with pytest.raises(KeyboardInterrupt):
            trainer.fit(series)

        resumed_config = _config(checkpoint_dir=str(tmp_path), resume=True)
        resumed_model = TFMAEModel(1, resumed_config)
        resumed_trainer = TFMAETrainer(resumed_model, resumed_config)
        log = resumed_trainer.fit(series)

        assert log.resumed
        assert _states_equal(reference.state_dict(), resumed_model.state_dict())

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        config = _config(checkpoint_dir=str(tmp_path / "empty"), resume=True)
        model = TFMAEModel(1, config)
        log = TFMAETrainer(model, config).fit(_series())
        assert not log.resumed
        assert log.summary()["batches"] > 0

    def test_resume_rejects_config_mismatch(self, tmp_path):
        series = _series()
        _train(_config(epochs=1, checkpoint_dir=str(tmp_path)), series)
        changed = _config(epochs=2, learning_rate=5e-3,
                          checkpoint_dir=str(tmp_path), resume=True)
        model = TFMAEModel(1, changed)
        with pytest.raises(CheckpointError, match="learning_rate"):
            TFMAETrainer(model, changed).fit(series)

    def test_checkpoint_metadata_records_probe_auc(self, tmp_path):
        series = _series()
        config = _config(epochs=2, select_best_epoch=True, checkpoint_dir=str(tmp_path))
        _train(config, series, validation=series[:150])
        manager = CheckpointManager(tmp_path)
        probe_model = TFMAEModel(1, config)
        metadata, extra = manager.load(probe_model)
        assert metadata["epoch"] == 2
        assert metadata["best_probe_auc"] is not None
        assert any(name.startswith("best.") for name in extra)

    def test_no_temp_files_left_behind(self, tmp_path):
        _train(_config(epochs=2, checkpoint_dir=str(tmp_path)), _series())
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert (tmp_path / CheckpointManager.DEFAULT_FILENAME).exists()


class TestDivergenceGuard:
    def test_transient_nan_rolls_back_with_lr_backoff(self):
        series = _series(300)
        config = _config(epochs=3, max_divergence_retries=2)
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model, config)
        original_loss = model.loss
        calls = {"n": 0}

        def flaky_loss(batch):
            calls["n"] += 1
            loss, metrics = original_loss(batch)
            if calls["n"] == 3:
                loss.data = np.asarray(np.nan)
                metrics = dict(metrics, minimise=float("nan"))
            return loss, metrics

        model.loss = flaky_loss
        log = trainer.fit(series)

        assert log.rollbacks and log.rollbacks[0][1] == "non_finite_loss"
        assert trainer.optimizer.lr == pytest.approx(config.learning_rate * config.lr_backoff)
        assert all(np.all(np.isfinite(v)) for v in model.state_dict().values())
        # The poisoned batch never entered the loss trace.
        assert all(np.isfinite(log.losses))

    def test_persistent_divergence_raises(self):
        series = _series(300)
        config = _config(epochs=2, max_divergence_retries=1)
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model, config)
        original_loss = model.loss

        def poisoned_loss(batch):
            loss, metrics = original_loss(batch)
            loss.data = np.asarray(np.nan)
            return loss, metrics

        model.loss = poisoned_loss
        with pytest.raises(TrainingDivergedError, match="non_finite_loss"):
            trainer.fit(series)

    def test_zero_retries_fails_fast(self):
        series = _series(300)
        config = _config(epochs=1, max_divergence_retries=0)
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model, config)
        original_loss = model.loss

        def poisoned_loss(batch):
            loss, metrics = original_loss(batch)
            loss.data = np.asarray(np.inf)
            return loss, metrics

        model.loss = poisoned_loss
        with pytest.raises(TrainingDivergedError):
            trainer.fit(series)

    def test_clean_run_has_no_rollbacks(self):
        series = _series(300)
        config = _config(epochs=2)
        model = TFMAEModel(1, config)
        trainer = TFMAETrainer(model, config)
        log = trainer.fit(series)
        assert log.rollbacks == []
        assert trainer.optimizer.lr == config.learning_rate
