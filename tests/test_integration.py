"""End-to-end integration tests exercising the full public API.

These mirror the paper's headline claims at toy scale:

* TFMAE detects planted anomalies far better than chance;
* the anomaly-aware masking beats random masking on point anomalies;
* TFMAE's contrastive score distribution shifts less between validation
  and test than a reconstruction baseline's (the Fig. 9 claim).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    TFMAE,
    TFMAEConfig,
    evaluate_detector,
    get_dataset,
    preset_for,
)
from repro.metrics import best_f1_threshold


def _tfmae_config(**overrides) -> TFMAEConfig:
    base = dict(
        window_size=100, d_model=32, num_layers=2, num_heads=4,
        temporal_mask_ratio=55.0, frequency_mask_ratio=30.0,
        anomaly_ratio=5.0, batch_size=16, epochs=6, learning_rate=1e-3,
    )
    base.update(overrides)
    return TFMAEConfig(**base)


@pytest.fixture(scope="module")
def global_dataset():
    return get_dataset("NIPS-TS-Global", seed=0, scale=0.05)


class TestHeadlineBehaviour:
    def test_tfmae_beats_chance_on_global_anomalies(self, global_dataset):
        detector = TFMAE(_tfmae_config())
        result = evaluate_detector(detector, global_dataset)
        # Random flagging at the 5% base rate gives F1 ~ 0.05 (unadjusted);
        # with point anomalies adjustment barely helps, so 0.25 is a clear
        # detection signal at this toy scale.
        assert result.metrics.f1 > 0.25

    def test_tfmae_scores_separate_anomalies(self, global_dataset):
        data = global_dataset.normalised()
        detector = TFMAE(_tfmae_config())
        detector.fit(data.train, data.validation)
        scores = detector.score(data.test)
        labels = data.test_labels.astype(bool)
        assert scores[labels].mean() > 2.0 * scores[~labels].mean()
        _, oracle_f1 = best_f1_threshold(scores, data.test_labels)
        assert oracle_f1 > 0.5

    def test_preset_pipeline_runs_on_multivariate_profile(self):
        dataset = get_dataset("MSL", seed=0, scale=0.003)
        config = preset_for("MSL", base=_tfmae_config(epochs=1, anomaly_ratio=1.0))
        detector = TFMAE(config)
        result = evaluate_detector(detector, dataset)
        assert result.metrics.f1 >= 0.0  # pipeline integrity on 55 channels
        assert result.dataset == "MSL"

    def test_distribution_shift_gap_smaller_than_reconstruction(self):
        """Fig. 9's claim: TFMAE's val/test score CDFs stay closer than a
        reconstruction model's on the drifting SMAP profile."""
        from repro.baselines import GPT4TS
        from repro.metrics import ks_distance

        dataset = get_dataset("SMAP", seed=0, scale=0.01).normalised()

        tfmae = TFMAE(_tfmae_config(epochs=2, anomaly_ratio=1.0))
        tfmae.fit(dataset.train, dataset.validation)
        normal_mask = dataset.test_labels == 0
        tfmae_gap = ks_distance(
            tfmae.score(dataset.validation),
            tfmae.score(dataset.test)[normal_mask],
        )

        recon = GPT4TS(window_size=100, epochs=2, anomaly_ratio=1.0, batch_size=16)
        recon.fit(dataset.train, dataset.validation)
        recon_gap = ks_distance(
            recon.score(dataset.validation),
            recon.score(dataset.test)[normal_mask],
        )
        assert tfmae_gap < recon_gap

    def test_masking_anomalies_beats_random_masking(self, global_dataset):
        """Table V's claim on point anomalies, at toy scale."""
        data = global_dataset.normalised()

        def oracle_f1(strategy: str) -> float:
            config = _tfmae_config(temporal_mask_strategy=strategy, epochs=4)
            detector = TFMAE(config)
            detector.fit(data.train, data.validation)
            scores = detector.score(data.test)
            return best_f1_threshold(scores, data.test_labels)[1]

        assert oracle_f1("cov") > oracle_f1("random") - 0.05


class TestReproducibility:
    def test_same_seed_same_result(self, global_dataset):
        results = []
        for _ in range(2):
            detector = TFMAE(_tfmae_config(epochs=1, seed=11))
            results.append(evaluate_detector(detector, global_dataset).metrics)
        assert results[0] == results[1]
