"""Tests for the future-work extensions: forecasting and classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions import (
    ForecastConfig,
    SoftmaxProbe,
    TFMAEClassifier,
    TFMAEForecaster,
    persistence_forecast,
    seasonal_naive_forecast,
)


def _sine_series(rng, length=1200, period=24, features=1):
    t = np.arange(length)
    columns = [
        np.sin(2 * np.pi * t / period + phase)
        for phase in np.linspace(0, np.pi, features)
    ]
    return np.stack(columns, axis=1) + rng.normal(0, 0.05, (length, features))


class TestNaiveForecasts:
    def test_persistence_shape_and_value(self, rng):
        context = rng.normal(size=(50, 3))
        forecast = persistence_forecast(context, horizon=7)
        assert forecast.shape == (7, 3)
        np.testing.assert_array_equal(forecast, np.tile(context[-1], (7, 1)))

    def test_seasonal_naive_repeats_season(self, rng):
        context = rng.normal(size=(48, 2))
        forecast = seasonal_naive_forecast(context, horizon=30, period=24)
        np.testing.assert_array_equal(forecast[:24], context[-24:])
        np.testing.assert_array_equal(forecast[24:], context[-24:-18])

    def test_seasonal_naive_validation(self, rng):
        with pytest.raises(ValueError):
            seasonal_naive_forecast(rng.normal(size=(10, 1)), 5, period=20)


class TestForecastConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ForecastConfig(context_length=0)
        with pytest.raises(ValueError):
            ForecastConfig(d_model=30, num_heads=4)

    def test_window_size(self):
        assert ForecastConfig(context_length=48, horizon=12).window_size == 60


class TestTFMAEForecaster:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        series = _sine_series(rng)
        config = ForecastConfig(context_length=48, horizon=12, d_model=16,
                                num_layers=1, num_heads=2, epochs=4, stride=4)
        return TFMAEForecaster(config).fit(series[:1000]), series

    def test_predict_shape(self, fitted):
        forecaster, series = fitted
        forecast = forecaster.predict(series[1000:1048])
        assert forecast.shape == (12, 1)

    def test_batched_predict(self, fitted):
        forecaster, series = fitted
        batch = np.stack([series[1000:1048], series[1010:1058]])
        assert forecaster.predict(batch).shape == (2, 12, 1)

    def test_beats_persistence_on_periodic_data(self, fitted):
        """Learned forecasts must beat the persistence floor on a sine."""
        forecaster, series = fitted
        errors_model, errors_persistence = [], []
        for start in range(1000, 1120, 12):
            context = series[start : start + 48]
            target = series[start + 48 : start + 60]
            errors_model.append(np.mean((forecaster.predict(context) - target) ** 2))
            errors_persistence.append(
                np.mean((persistence_forecast(context, 12) - target) ** 2)
            )
        assert np.mean(errors_model) < np.mean(errors_persistence)

    def test_loss_decreases(self, fitted):
        forecaster, _ = fitted
        history = forecaster.loss_history
        assert np.mean(history[-5:]) < np.mean(history[:5])

    def test_wrong_context_length_rejected(self, fitted):
        forecaster, series = fitted
        with pytest.raises(ValueError):
            forecaster.predict(series[:30])

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            TFMAEForecaster().predict(np.zeros((96, 1)))

    def test_short_series_rejected(self, rng):
        with pytest.raises(ValueError):
            TFMAEForecaster(ForecastConfig(context_length=48, horizon=12,
                                           d_model=16, num_heads=2)).fit(
                rng.normal(size=(20, 1))
            )


class TestSoftmaxProbe:
    def test_separable_classes(self, rng):
        features = np.concatenate([
            rng.normal(-2, 0.3, size=(100, 4)),
            rng.normal(2, 0.3, size=(100, 4)),
        ])
        labels = np.array([0] * 100 + [1] * 100)
        probe = SoftmaxProbe(n_classes=2).fit(features, labels)
        assert (probe.predict(features) == labels).mean() > 0.98

    def test_three_classes(self, rng):
        centers = np.array([[-3, 0], [3, 0], [0, 3]])
        features = np.concatenate([rng.normal(c, 0.3, size=(60, 2)) for c in centers])
        labels = np.repeat([0, 1, 2], 60)
        probe = SoftmaxProbe(n_classes=3).fit(features, labels)
        assert (probe.predict(features) == labels).mean() > 0.95

    def test_proba_rows_sum_to_one(self, rng):
        probe = SoftmaxProbe(n_classes=2).fit(rng.normal(size=(50, 3)),
                                              rng.integers(0, 2, 50))
        proba = probe.predict_proba(rng.normal(size=(10, 3)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            SoftmaxProbe(n_classes=1)
        with pytest.raises(ValueError):
            SoftmaxProbe(n_classes=2).fit(rng.normal(size=(10, 2)),
                                          np.array([0, 2] * 5))
        with pytest.raises(RuntimeError):
            SoftmaxProbe(n_classes=2).predict(rng.normal(size=(5, 2)))


class TestTFMAEClassifier:
    def test_linear_probe_separates_waveforms(self, rng):
        """Frozen TFMAE features must linearly separate sine vs square
        windows — the representation-quality claim behind the extension."""
        from repro.core import TFMAEConfig, TFMAEModel

        t = np.arange(40)
        def make_windows(kind, count):
            out = []
            for _ in range(count):
                period = rng.uniform(8, 16)
                phase = rng.uniform(0, 2 * np.pi)
                wave = np.sin(2 * np.pi * t / period + phase)
                if kind == "square":
                    wave = np.sign(wave)
                out.append(wave + rng.normal(0, 0.05, t.size))
            return np.stack(out)[:, :, None]

        windows = np.concatenate([make_windows("sine", 60), make_windows("square", 60)])
        labels = np.array([0] * 60 + [1] * 60)

        config = TFMAEConfig(window_size=40, d_model=16, num_layers=1, num_heads=2,
                             temporal_mask_ratio=20.0, frequency_mask_ratio=20.0)
        model = TFMAEModel(1, config)  # untrained features already separate these
        classifier = TFMAEClassifier(model, n_classes=2)
        classifier.fit(windows, labels)
        assert classifier.accuracy(windows, labels) > 0.9

    def test_requires_batched_windows(self, rng):
        from repro.core import TFMAEConfig, TFMAEModel

        config = TFMAEConfig(window_size=20, d_model=16, num_layers=1, num_heads=2)
        classifier = TFMAEClassifier(TFMAEModel(1, config), n_classes=2)
        with pytest.raises(ValueError):
            classifier.representations(rng.normal(size=(20, 1)))
