"""LOF and Isolation Forest tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LOF, IsolationForest
from repro.baselines.classical import _average_path_length


@pytest.fixture
def clustered_data(rng):
    """Dense training cloud plus a test set with obvious outliers."""
    train = rng.normal(0, 1, size=(1000, 3))
    test = rng.normal(0, 1, size=(200, 3))
    outlier_positions = [10, 100, 150]
    test[outlier_positions] = 12.0
    return train, test, outlier_positions


class TestLOF:
    def test_outliers_score_higher(self, clustered_data):
        train, test, outliers = clustered_data
        lof = LOF(n_neighbors=10).fit(train)
        scores = lof.score(test)
        inlier_scores = np.delete(scores, outliers)
        assert scores[outliers].min() > inlier_scores.max()

    def test_inliers_score_near_one(self, clustered_data):
        train, test, outliers = clustered_data
        lof = LOF(n_neighbors=10).fit(train)
        scores = np.delete(lof.score(test), outliers)
        assert 0.8 < np.median(scores) < 1.5

    def test_subsampling_bound(self, rng):
        lof = LOF(n_neighbors=5, max_reference=100)
        lof.fit(rng.normal(size=(10_000, 2)))
        assert lof._tree.n == 100

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            LOF(n_neighbors=0)

    def test_predict_pipeline(self, clustered_data, rng):
        train, test, outliers = clustered_data
        lof = LOF(n_neighbors=10, anomaly_ratio=2.0)
        lof.fit(train, rng.normal(size=(300, 3)))
        labels = lof.predict(test)
        assert labels[outliers].all()


class TestIsolationForest:
    def test_outliers_score_higher(self, clustered_data):
        train, test, outliers = clustered_data
        forest = IsolationForest(n_trees=50).fit(train)
        scores = forest.score(test)
        assert scores[outliers].min() > np.delete(scores, outliers).mean()

    def test_scores_in_unit_interval(self, clustered_data):
        train, test, _ = clustered_data
        scores = IsolationForest(n_trees=20).fit(train).score(test)
        assert np.all((scores > 0) & (scores < 1))

    def test_deterministic_in_seed(self, clustered_data):
        train, test, _ = clustered_data
        a = IsolationForest(n_trees=10, seed=1).fit(train).score(test)
        b = IsolationForest(n_trees=10, seed=1).fit(train).score(test)
        np.testing.assert_array_equal(a, b)

    def test_small_training_set(self, rng):
        forest = IsolationForest(n_trees=5, subsample=256)
        forest.fit(rng.normal(size=(20, 2)))
        assert forest._sample_size == 20
        assert forest.score(rng.normal(size=(10, 2))).shape == (10,)

    def test_constant_data_handled(self):
        forest = IsolationForest(n_trees=5)
        forest.fit(np.ones((50, 2)))
        scores = forest.score(np.ones((5, 2)))
        assert np.all(np.isfinite(scores))


class TestAveragePathLength:
    def test_known_values(self):
        assert _average_path_length(np.array([1]))[0] == 0.0
        assert _average_path_length(np.array([2]))[0] == 1.0

    def test_grows_logarithmically(self):
        values = _average_path_length(np.array([10, 100, 1000]))
        assert values[0] < values[1] < values[2]
        assert values[2] < 2 * np.log(1000)
