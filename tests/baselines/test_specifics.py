"""Method-specific baseline tests: the mechanisms that define each method."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DAGMM,
    DSVDD,
    GPT4TS,
    USAD,
    AnomalyTransformer,
    GaussianMixture,
    TimesNet,
    dominant_periods,
)
from repro.nn import Tensor


class TestGaussianMixture:
    def test_recovers_two_clusters(self, rng):
        data = np.concatenate([
            rng.normal(-5, 0.5, size=(500, 2)),
            rng.normal(5, 0.5, size=(500, 2)),
        ])
        gmm = GaussianMixture(n_components=2, seed=0).fit(data)
        means = np.sort(gmm.means_[:, 0])
        np.testing.assert_allclose(means, [-5, 5], atol=0.5)

    def test_energy_higher_for_outliers(self, rng):
        data = rng.normal(0, 1, size=(1000, 2))
        gmm = GaussianMixture(n_components=3, seed=0).fit(data)
        inlier_energy = gmm.energy(np.zeros((1, 2)))[0]
        outlier_energy = gmm.energy(np.full((1, 2), 20.0))[0]
        assert outlier_energy > inlier_energy + 10

    def test_weights_sum_to_one(self, rng):
        gmm = GaussianMixture(n_components=4, seed=0).fit(rng.normal(size=(200, 3)))
        assert gmm.weights_.sum() == pytest.approx(1.0)

    def test_more_components_than_points_clamped(self, rng):
        gmm = GaussianMixture(n_components=10, seed=0).fit(rng.normal(size=(4, 2)))
        assert gmm.means_.shape[0] == 4

    def test_energy_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture().energy(np.zeros((1, 2)))


class TestDominantPeriods:
    def test_finds_planted_period(self):
        t = np.arange(200)
        windows = np.sin(2 * np.pi * t / 25.0)[None, :, None]
        periods, amplitudes = dominant_periods(windows, k=1)
        assert periods[0] == 25

    def test_dc_excluded(self):
        windows = np.full((1, 64, 1), 7.0)  # pure DC
        periods, amplitudes = dominant_periods(windows, k=2)
        assert np.all(periods >= 2)

    def test_k_clamped(self, rng):
        windows = rng.normal(size=(1, 8, 1))
        periods, _ = dominant_periods(windows, k=100)
        assert len(periods) <= 4


class TestDSVDD:
    def test_center_fixed_and_nonzero(self, rng):
        detector = DSVDD(window_size=20, epochs=1, batch_size=4)
        detector.fit(rng.normal(size=(200, 3)))
        center = detector.model.center
        assert center is not None
        assert np.all(np.abs(center) >= 0.1 - 1e-12)

    def test_encoder_has_no_biases(self, rng):
        detector = DSVDD(window_size=20, epochs=0 or 1)
        detector.fit(rng.normal(size=(100, 2)))
        names = [name for name, _ in detector.model.named_parameters()]
        assert not any("bias" in name for name in names)


class TestUSAD:
    def test_epoch_schedule_advances(self, rng):
        detector = USAD(window_size=20, epochs=3, batch_size=8)
        detector.fit(rng.normal(size=(200, 2)))
        assert detector.model.epoch == 4  # starts at 1, +1 per epoch

    def test_score_combines_two_errors(self, rng):
        detector = USAD(window_size=20, epochs=1)
        detector.fit(rng.normal(size=(200, 2)))
        windows = rng.normal(size=(2, 20, 2))
        full = detector.model.score_windows(windows, alpha=0.5, beta=0.5)
        only_first = detector.model.score_windows(windows, alpha=1.0, beta=0.0)
        only_second = detector.model.score_windows(windows, alpha=0.0, beta=1.0)
        np.testing.assert_allclose(full, 0.5 * only_first + 0.5 * only_second)


class TestGPT4TS:
    def test_backbone_frozen_except_norms(self, rng):
        detector = GPT4TS(window_size=20, epochs=1)
        detector.fit(rng.normal(size=(100, 2)))
        for name, param in detector.model.backbone.named_parameters():
            if ".norm" in name:
                assert param.requires_grad, name
            else:
                assert not param.requires_grad, name

    def test_backbone_unchanged_by_training(self, rng):
        detector = GPT4TS(window_size=20, epochs=2, learning_rate=1e-2)
        model = detector.build_model(2)
        frozen_before = {
            name: param.data.copy()
            for name, param in model.backbone.named_parameters()
            if not param.requires_grad
        }
        detector.model = model
        detector._fitted = True
        # Train through the public API on fresh data.
        detector._fit(rng.normal(size=(200, 2)))
        # _fit rebuilds the model, so check the frozen params of the new one
        # still receive no gradient by running one manual step instead.
        model = detector.model
        loss = model.loss(rng.normal(size=(4, 20, 2)))
        loss.backward()
        for name, param in model.backbone.named_parameters():
            if not param.requires_grad:
                assert param.grad is None, name


class TestAnomalyTransformer:
    def test_association_discrepancy_shape(self, rng):
        detector = AnomalyTransformer(window_size=20, epochs=1)
        model = detector.build_model(2)
        windows = rng.normal(size=(3, 20, 2))
        _, associations = model._forward(windows)
        assert len(associations) == detector.layers
        series, prior = associations[0]
        assert series.shape == (3, 20, 20)
        assert prior.shape == (3, 20, 20)
        np.testing.assert_allclose(prior.data.sum(axis=-1), 1.0, atol=1e-8)

    def test_prior_concentrates_near_diagonal(self, rng):
        detector = AnomalyTransformer(window_size=20, epochs=1)
        model = detector.build_model(2)
        _, associations = model._forward(rng.normal(size=(1, 20, 2)))
        _, prior = associations[0]
        diagonal = np.diagonal(prior.data[0])
        assert diagonal.mean() > prior.data[0].mean()

    def test_score_weighted_by_discrepancy(self, rng):
        detector = AnomalyTransformer(window_size=20, epochs=1)
        detector.fit(rng.normal(size=(200, 2)))
        scores = detector.model.score_windows(rng.normal(size=(2, 20, 2)))
        assert scores.shape == (2, 20)
        assert np.all(scores >= 0)


class TestTimesNet:
    def test_period_folding_preserves_shape(self, rng):
        detector = TimesNet(window_size=30, epochs=1)
        model = detector.build_model(2)
        x = Tensor(rng.normal(size=(2, 30, model.embed.out_features)))
        out = model.block.forward_period(x, period=7)  # 30 % 7 != 0 -> padding path
        assert out.shape == (2, 30, model.embed.out_features)
