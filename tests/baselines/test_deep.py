"""Contract tests that every deep baseline must satisfy.

One parametrised suite covers the full registry: fit, score alignment,
threshold calibration, binary prediction, and (for a planted easy anomaly)
score separation.  Method-specific behaviour is tested in
``test_specifics.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BASELINE_REGISTRY
from repro.baselines.common import WindowModelDetector

_DEEP_NAMES = [
    name for name, ctor in BASELINE_REGISTRY.items()
    if issubclass(ctor, WindowModelDetector)
]

_FAST_KWARGS = dict(window_size=20, epochs=1, batch_size=8, anomaly_ratio=5.0, seed=0)


def _make(name: str):
    ctor = BASELINE_REGISTRY[name]
    kwargs = dict(_FAST_KWARGS)
    if name == "DCdetector":
        kwargs["patch"] = 5
    return ctor(**kwargs)


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(0)
    t = np.arange(900)
    base = np.stack([
        np.sin(2 * np.pi * t / 20.0),
        np.cos(2 * np.pi * t / 40.0),
    ], axis=1)
    noisy = base + rng.normal(0, 0.05, base.shape)
    train, val, test = noisy[:500], noisy[500:700], noisy[700:].copy()
    spikes = [40, 120, 170]
    test[spikes] += 6.0
    return train, val, test, spikes


class TestDeepBaselineContract:
    @pytest.mark.parametrize("name", _DEEP_NAMES)
    def test_fit_score_predict(self, name, series):
        train, val, test, _ = series
        detector = _make(name)
        detector.fit(train, val)
        assert detector.threshold_ is not None
        scores = detector.score(test)
        assert scores.shape == (test.shape[0],)
        assert np.all(np.isfinite(scores))
        labels = detector.predict(test)
        assert set(np.unique(labels)).issubset({0, 1})

    @pytest.mark.parametrize("name", _DEEP_NAMES)
    def test_loss_history_recorded(self, name, series):
        train, val, _, _ = series
        detector = _make(name)
        detector.fit(train)
        assert len(detector.loss_history) > 0
        assert all(np.isfinite(value) for value in detector.loss_history)

    @pytest.mark.parametrize("name", _DEEP_NAMES)
    def test_unfitted_raises(self, name, series):
        _, _, test, _ = series
        with pytest.raises(RuntimeError):
            _make(name).score(test)

    @pytest.mark.parametrize("name", _DEEP_NAMES)
    def test_spike_scores_above_median(self, name, series):
        """Every method must rank blatant 6-sigma spikes above the median
        normal score — a weak but universal sanity bar."""
        train, val, test, spikes = series
        detector = _make(name)
        detector.fit(train, val)
        scores = detector.score(test)
        spike_neighbourhood = scores[spikes].min()
        assert spike_neighbourhood > np.median(np.delete(scores, spikes))

    def test_short_training_series_rejected(self, series):
        detector = _make(_DEEP_NAMES[0])
        with pytest.raises(ValueError):
            detector.fit(np.zeros((5, 2)))
