"""Gradient-direction tests for the adversarial baselines.

The GAN-style baselines realise alternating optimiser phases as one
combined loss with selective freezing (:func:`repro.nn.module.frozen`).
These tests pin the mechanics: each phase's gradients reach exactly the
parameter set it is supposed to train.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.beatgan import _BeatGANModel
from repro.baselines.daemon import _DAEMONModel
from repro.baselines.tranad import _TranADModel
from repro.baselines.usad import _USADModel
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.module import frozen


def _grads(module) -> float:
    return sum(
        float(np.abs(p.grad).sum()) for p in module.parameters() if p.grad is not None
    )


class TestBeatGAN:
    def test_combined_loss_reaches_both_networks(self, rng):
        model = _BeatGANModel(2, 8, rng)
        loss = model.loss(rng.normal(size=(3, 20, 2)))
        loss.backward()
        assert _grads(model.generator) > 0
        assert _grads(model.discriminator) > 0

    def test_feature_matching_does_not_train_discriminator(self, rng):
        """The generator's feature-matching term alone must leave D's
        parameters untouched (it is computed under frozen(D))."""
        model = _BeatGANModel(2, 8, rng)
        x = Tensor(rng.normal(size=(2, 20, 2)))
        reconstruction = model.generator(x)
        with frozen(model.discriminator):
            term = F.mse_loss(
                model.discriminator.features(reconstruction),
                model.discriminator.features(x).detach(),
            )
        term.backward()
        assert _grads(model.discriminator) == 0.0
        assert _grads(model.generator) > 0


class TestUSAD:
    def test_loss_reaches_all_components(self, rng):
        model = _USADModel(2, 20, 8, rng)
        model.loss(rng.normal(size=(3, 20, 2))).backward()
        assert _grads(model.encoder) > 0
        assert _grads(model.decoder1) > 0
        assert _grads(model.decoder2) > 0

    def test_phase_weights_shift_with_epoch(self, rng):
        model = _USADModel(2, 20, 8, rng)
        windows = rng.normal(size=(3, 20, 2))
        early = model.loss(windows).item()
        model.epoch = 50
        late = model.loss(windows).item()
        # 1/n weighting changes the objective value as n grows.
        assert early != pytest.approx(late)


class TestTranAD:
    def test_adversarial_decomposition(self, rng):
        """Phase-2 minimise must not touch decoder2; maximise must not
        touch encoder/decoder1/embed."""
        model = _TranADModel(2, 8, 1, 2, rng)
        windows = rng.normal(size=(2, 15, 2))

        with frozen(model.decoder2):
            x, o1, o2 = model._two_phase(windows)
            (F.mse_loss(o1, x) + F.mse_loss(o2, x)).backward()
        assert _grads(model.decoder2) == 0.0
        assert _grads(model.encoder) > 0
        model.zero_grad()

        with frozen(model.encoder), frozen(model.decoder1), frozen(model.embed):
            x, _, o2 = model._two_phase(windows)
            F.mse_loss(o2, x).backward()
        assert _grads(model.encoder) == 0.0
        assert _grads(model.decoder1) == 0.0
        assert _grads(model.decoder2) > 0

    def test_focus_conditioning_changes_output(self, rng):
        model = _TranADModel(2, 8, 1, 2, rng)
        windows = rng.normal(size=(1, 15, 2))
        _, o1, o2 = model._two_phase(windows)
        assert not np.allclose(o1.data, o2.data)


class TestDAEMON:
    def test_loss_reaches_all_components(self, rng):
        model = _DAEMONModel(2, 8, 4, rng)
        model.loss(rng.normal(size=(3, 20, 2))).backward()
        assert _grads(model.encoder) > 0
        assert _grads(model.decoder) > 0
        assert _grads(model.latent_disc) > 0
        assert _grads(model.recon_disc) > 0

    def test_generator_fooling_term_leaves_critics_untouched(self, rng):
        model = _DAEMONModel(2, 8, 4, rng)
        x = Tensor(rng.normal(size=(2, 20, 2)))
        z = model.encoder(x)
        ones = Tensor(np.ones((2, 1)))
        with frozen(model.latent_disc):
            F.binary_cross_entropy(model.latent_disc(z.mean(axis=1)), ones).backward()
        assert _grads(model.latent_disc) == 0.0
        assert _grads(model.encoder) > 0
