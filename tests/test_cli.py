"""CLI tests (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "TFMAE"
        assert args.dataset == "NIPS-TS-Global"
        assert args.scale == 0.01

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "Nope"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "Nope"])


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "NIPS-TS-Global" in out
        assert "SWaT" in out

    def test_list_methods(self, capsys):
        assert main(["list-methods"]) == 0
        out = capsys.readouterr().out
        assert "TFMAE" in out
        assert "contrastive" in out

    def test_run_classical_method(self, capsys):
        code = main(["run", "--method", "IForest", "--dataset", "NIPS-TS-Global",
                     "--scale", "0.02", "--anomaly-ratio", "5.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IForest" in out
        assert "NIPS-TS-Global" in out

    def test_run_tfmae_small(self, capsys):
        code = main(["run", "--method", "TFMAE", "--dataset", "NIPS-TS-Global",
                     "--scale", "0.02", "--epochs", "1", "--anomaly-ratio", "5.0"])
        assert code == 0
        assert "TFMAE" in capsys.readouterr().out

    def test_run_no_adjust(self, capsys):
        code = main(["run", "--method", "LOF", "--dataset", "NIPS-TS-Global",
                     "--scale", "0.02", "--anomaly-ratio", "5.0", "--no-adjust"])
        assert code == 0
