"""CLI tests (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "TFMAE"
        assert args.dataset == "NIPS-TS-Global"
        assert args.scale == 0.01

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "Nope"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "Nope"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.registry == "./model-registry"
        assert args.port == 8080
        assert args.max_batch_size == 32
        assert args.max_delay_ms == 2.0
        assert args.queue_size == 256
        assert args.procs == 0  # thread tier unless --procs asks for the pool
        assert args.threads is None and args.workers is None  # both default to 2
        assert args.max_inflight == 64
        assert not args.demo

    def test_serve_threads_flag_and_workers_alias(self):
        from repro.cli import _resolve_serve_threads

        args = build_parser().parse_args(["serve", "--threads", "4"])
        assert _resolve_serve_threads(args) == 4

        args = build_parser().parse_args(["serve"])
        assert _resolve_serve_threads(args) == 2  # default

        args = build_parser().parse_args(["serve", "--workers", "3"])
        with pytest.warns(DeprecationWarning, match="--workers is deprecated"):
            assert _resolve_serve_threads(args) == 3

        # An explicit --threads wins over the deprecated alias.
        args = build_parser().parse_args(["serve", "--workers", "3", "--threads", "5"])
        with pytest.warns(DeprecationWarning):
            assert _resolve_serve_threads(args) == 5

    @pytest.mark.parametrize("argv, message", [
        (["serve", "--procs", "-1"], "--procs must be >= 0"),
        (["serve", "--threads", "0"], "--threads must be >= 1"),
        (["serve", "--threads", "-2"], "--threads must be >= 1"),
        (["serve", "--workers", "0"], "--workers must be >= 1"),
        (["serve", "--max-inflight", "0"], "--max-inflight must be >= 1"),
        (["serve", "--max-inflight", "-5"], "--max-inflight must be >= 1"),
    ])
    def test_serve_rejects_nonsensical_counts(self, argv, message):
        from repro.cli import _validate_serve_args

        args = build_parser().parse_args(argv)
        with pytest.raises(SystemExit, match=message):
            _validate_serve_args(args)

    def test_serve_accepts_valid_counts(self):
        from repro.cli import _validate_serve_args

        args = build_parser().parse_args(
            ["serve", "--procs", "0", "--threads", "1", "--max-inflight", "1"])
        _validate_serve_args(args)  # does not raise


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "NIPS-TS-Global" in out
        assert "SWaT" in out

    def test_list_methods(self, capsys):
        assert main(["list-methods"]) == 0
        out = capsys.readouterr().out
        assert "TFMAE" in out
        assert "contrastive" in out

    def test_run_classical_method(self, capsys):
        code = main(["run", "--method", "IForest", "--dataset", "NIPS-TS-Global",
                     "--scale", "0.02", "--anomaly-ratio", "5.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IForest" in out
        assert "NIPS-TS-Global" in out

    def test_run_tfmae_small(self, capsys):
        code = main(["run", "--method", "TFMAE", "--dataset", "NIPS-TS-Global",
                     "--scale", "0.02", "--epochs", "1", "--anomaly-ratio", "5.0"])
        assert code == 0
        assert "TFMAE" in capsys.readouterr().out

    def test_run_no_adjust(self, capsys):
        code = main(["run", "--method", "LOF", "--dataset", "NIPS-TS-Global",
                     "--scale", "0.02", "--anomaly-ratio", "5.0", "--no-adjust"])
        assert code == 0

    def test_serve_empty_registry_exits_with_guidance(self, tmp_path):
        from repro.cli import _build_server

        args = build_parser().parse_args(["serve", "--registry", str(tmp_path)])
        with pytest.raises(SystemExit, match="no models"):
            _build_server(args)

    def test_serve_builds_server_from_registry(self, tmp_path, rng, fast_config):
        """_build_server wires registry + batcher + HTTP front end from
        CLI flags; serve_forever() is the only piece not exercised."""
        import numpy as np

        from repro.cli import _build_server
        from repro.core import TFMAE
        from repro.serve import ModelRegistry

        t = np.arange(400)
        series = np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (400, 1))
        detector = TFMAE(fast_config)
        detector.fit(series[:300], series[300:])
        ModelRegistry(tmp_path).publish("demo", detector)

        args = build_parser().parse_args(
            ["serve", "--registry", str(tmp_path), "--port", "0",
             "--max-batch-size", "4", "--workers", "1"]
        )
        server = _build_server(args)
        assert server.batcher.max_batch_size == 4
        assert server.pool is None  # --procs 0 default: thread tier
        with server:
            score = server.batcher.score("demo:v1", series[:50])
        assert score == detector.score(series[:50])[-1]

        # --procs switches the scoring tier to the process pool (built
        # but not started here: workers spawn on server start).
        args = build_parser().parse_args(
            ["serve", "--registry", str(tmp_path), "--port", "0",
             "--procs", "2", "--max-inflight", "8"]
        )
        pooled = _build_server(args)
        assert pooled.pool is not None
        assert pooled.pool.procs == 2
        assert pooled.pool.max_inflight_per_model == 8
