"""Contract tests for the shared :class:`repro.detector.BaseDetector` API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector import BaseDetector


class _MeanDistanceDetector(BaseDetector):
    """Minimal detector: score = distance from the training mean."""

    name = "toy"

    def _fit(self, train: np.ndarray) -> None:
        self.mean_ = train.mean(axis=0)

    def score(self, series: np.ndarray) -> np.ndarray:
        return np.linalg.norm(series - self.mean_, axis=1)


class TestBaseDetectorContract:
    def test_fit_returns_self(self, rng):
        detector = _MeanDistanceDetector()
        assert detector.fit(rng.normal(size=(50, 2))) is detector

    def test_invalid_anomaly_ratio(self):
        with pytest.raises(ValueError):
            _MeanDistanceDetector(anomaly_ratio=0.0)
        with pytest.raises(ValueError):
            _MeanDistanceDetector(anomaly_ratio=100.0)

    def test_fit_requires_2d(self, rng):
        with pytest.raises(ValueError):
            _MeanDistanceDetector().fit(rng.normal(size=50))

    def test_fit_rejects_non_finite(self, rng):
        train = rng.normal(size=(50, 2))
        train[10, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            _MeanDistanceDetector().fit(train)
        train[10, 0] = np.inf
        with pytest.raises(ValueError):
            _MeanDistanceDetector().fit(train)

    def test_score_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            _MeanDistanceDetector().calibrate_threshold(rng.normal(size=(10, 2)))

    def test_predict_without_threshold_raises(self, rng):
        detector = _MeanDistanceDetector()
        detector.fit(rng.normal(size=(50, 2)))
        with pytest.raises(RuntimeError):
            detector.predict(rng.normal(size=(10, 2)))

    def test_threshold_flags_expected_validation_fraction(self, rng):
        detector = _MeanDistanceDetector(anomaly_ratio=10.0)
        validation = rng.normal(size=(1000, 2))
        detector.fit(rng.normal(size=(100, 2)), validation)
        flagged = detector.predict(validation).mean()
        assert flagged == pytest.approx(0.10, abs=0.02)

    def test_calibrate_returns_threshold(self, rng):
        detector = _MeanDistanceDetector()
        detector.fit(rng.normal(size=(50, 2)))
        value = detector.calibrate_threshold(rng.normal(size=(100, 2)))
        assert value == detector.threshold_

    def test_obvious_outliers_flagged(self, rng):
        detector = _MeanDistanceDetector(anomaly_ratio=5.0)
        detector.fit(rng.normal(size=(200, 2)), rng.normal(size=(200, 2)))
        test = rng.normal(size=(100, 2))
        test[[7, 42]] = 50.0
        labels = detector.predict(test)
        assert labels[7] == 1 and labels[42] == 1


class TestScoreLastContract:
    """score_last: batched == sequential, and inputs are validated."""

    def _fitted(self, rng):
        return _MeanDistanceDetector().fit(rng.normal(size=(50, 2)))

    def test_matches_sequential_scoring(self, rng):
        detector = self._fitted(rng)
        windows = rng.normal(size=(7, 10, 2))
        batched = detector.score_last(windows)
        sequential = np.array([detector.score(w)[-1] for w in windows])
        np.testing.assert_array_equal(batched, sequential)

    def test_single_window_promoted(self, rng):
        detector = self._fitted(rng)
        window = rng.normal(size=(10, 2))
        assert detector.score_last(window).shape == (1,)

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError, match="batch, time, features"):
            self._fitted(rng).score_last(rng.normal(size=(2, 3, 4, 5)))

    def test_rejects_non_finite_windows(self, rng):
        """Regression: a NaN window must raise on entry, exactly like
        score(), instead of flowing through streaming/serving as a
        silently non-finite score."""
        detector = self._fitted(rng)
        windows = rng.normal(size=(3, 10, 2))
        windows[1, 4, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            detector.score_last(windows)
        windows[1, 4, 0] = np.inf
        with pytest.raises(ValueError):
            detector.score_last(windows)
