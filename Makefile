# Convenience targets for the TFMAE reproduction.

.PHONY: install test lint lockcheck check bench bench-tables bench-figures perf jit-bench train-bench robustness chaos serve serve-bench multiproc-bench examples clean

install:
	python setup.py develop

test:
	pytest tests/

test-verbose:
	pytest tests/ -v

lint:
	PYTHONPATH=src python -m repro analyze lint

# Runtime lock-order checking: tier-1 + chaos run with every threading
# lock instrumented (repro.analysis.lockcheck); session teardown fails
# on any observed lock-order cycle or a lock held across process spawn.
lockcheck:
	PYTHONPATH=src REPRO_LOCKCHECK=1 pytest tests/ -q
	PYTHONPATH=src REPRO_LOCKCHECK=1 pytest -m chaos tests/ -q

check:
	PYTHONPATH=src python -m repro analyze --all
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only -s

bench-tables:
	pytest benchmarks/bench_table2_datasets.py benchmarks/bench_table3_main.py \
	       benchmarks/bench_table4_ablation.py benchmarks/bench_table5_masking.py \
	       --benchmark-only -s

bench-figures:
	pytest benchmarks/bench_fig1_motivation.py benchmarks/bench_fig6_masking_ratios.py \
	       benchmarks/bench_fig7_hyperparams.py benchmarks/bench_fig8_case_study.py \
	       benchmarks/bench_fig9_distribution_shift.py benchmarks/bench_fig10_efficiency.py \
	       --benchmark-only -s

perf:
	PYTHONPATH=src python benchmarks/bench_nn_kernels.py
	PYTHONPATH=src pytest tests/nn/test_fused.py tests/core/test_batched_scoring.py -q
	PYTHONPATH=src pytest benchmarks/bench_nn_kernels.py --benchmark-only -s

# Trace-compiled scoring: jit vs interpreted score_last.  Point
# REPRO_BENCH_JIT_BASELINE at a pre-JIT checkout's src/ to also measure
# the historical interpreted baseline (see bench_jit_scoring.py).
jit-bench:
	PYTHONPATH=src pytest tests/nn/test_jit.py -q
	PYTHONPATH=src python benchmarks/bench_jit_scoring.py

# Trace-compiled training: compiled vs interpreted fit, bitwise-asserted
# loss curve and state_dict (see docs/performance.md, bench_train_jit.py).
train-bench:
	PYTHONPATH=src pytest tests/nn/test_train_jit.py -q
	PYTHONPATH=src python benchmarks/bench_train_jit.py

robustness:
	PYTHONPATH=src pytest tests/core/test_fault_tolerance.py \
	       tests/test_robustness_stream.py tests/test_property_nonfinite.py -q
	PYTHONPATH=src REPRO_BENCH_STREAM=300 REPRO_BENCH_EPOCHS=4 \
	       pytest benchmarks/bench_robustness_faults.py --benchmark-only -s

# Fault-injection suite + lifecycle recovery bench (detection-to-rollback
# latency and per-fault availability; see docs/serving.md fault matrix).
chaos:
	PYTHONPATH=src pytest -m chaos tests/ -q
	PYTHONPATH=src python benchmarks/bench_lifecycle_recovery.py

serve:
	PYTHONPATH=src python -m repro serve --demo

serve-bench:
	PYTHONPATH=src pytest tests/serve/ -q
	PYTHONPATH=src pytest benchmarks/bench_serving_throughput.py --benchmark-only -s

# Process-pool tier: throughput/p99 vs worker count over live HTTP, plus
# the shared-memory single-copy RSS verification (BENCH_multiproc.json).
multiproc-bench:
	PYTHONPATH=src python benchmarks/bench_multiproc_serving.py

examples:
	for f in examples/*.py; do echo "=== $$f ==="; python $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
