"""Incident triage: stream, alert, visualise, attribute.

A realistic on-call loop built from the library's operational pieces:

1. train TFMAE offline on a multivariate PSM-style workload;
2. stream the live series through :class:`repro.streaming.StreamingDetector`;
3. when an alarm fires, render the surrounding signal and scores in the
   terminal (:mod:`repro.viz`);
4. attribute the alarm to channels with the model's own masking statistic
   (:func:`repro.eval.statistic_attribution`).

Run:
    python examples/incident_triage.py
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, get_dataset
from repro.core import TFMAEConfig, preset_for
from repro.eval import statistic_attribution, top_channels
from repro.streaming import StreamingDetector
from repro.viz import render_detection


def main() -> None:
    dataset = get_dataset("PSM", seed=0, scale=0.01).normalised()
    print("workload:", dataset.summary())

    base = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                       batch_size=16, epochs=6, learning_rate=1e-3)
    detector = TFMAE(preset_for("PSM", base=base, anomaly_ratio=10.0))
    detector.fit(dataset.train, dataset.validation)
    print(f"offline training done; threshold={detector.threshold_:.4f}\n")

    # Stream the first stretch of the live series.
    stream = StreamingDetector(detector, context=100)
    live = dataset.test[:800]
    alarms: list[int] = []
    for event in stream.update_many(live):
        if event.is_anomaly:
            alarms.append(event.index)

    print(f"streamed {stream.observations_seen} observations, "
          f"{len(alarms)} alarm points")
    if not alarms:
        print("no alarms in this stretch — try a longer stream")
        return

    # Triage the first alarm burst: context window around it.
    first = alarms[0]
    lo = max(0, first - 60)
    hi = min(live.shape[0], first + 60)
    window = live[lo:hi]
    scores = detector.score(window)

    print(f"\n=== incident around t={first} ===")
    print(render_detection(
        window[:, 0], scores, detector.threshold_,
        labels=dataset.test_labels[lo:hi], width=76,
    ))

    flagged = np.flatnonzero(scores >= detector.threshold_)
    if flagged.size == 0:
        flagged = np.array([int(scores.argmax())])
    attribution = statistic_attribution(window, flagged)
    print("\nlikely driving channels (masking-statistic attribution):")
    for channel, share in top_channels(attribution, k=3):
        print(f"  feature {channel:<3d} share={share:.0%}")


if __name__ == "__main__":
    main()
