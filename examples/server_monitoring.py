"""Server-fleet monitoring: multivariate detection on an SMD-style workload.

The scenario from the paper's introduction — observability data from
internet server machines (the SMD benchmark): dozens of correlated
channels (request rates, CPU-like periodic load, slowly drifting
baselines) where anomalies hit several channels at once.

This example shows the *operational* loop a platform team would run:

1. train TFMAE on last month's (unlabeled, lightly contaminated) metrics;
2. calibrate the alert threshold so the expected alert budget is ~2% of
   observations;
3. stream the new day through the detector and group alarm points into
   incidents;
4. compare against a classical baseline (Isolation Forest) on the same
   budget.

Run:
    python examples/server_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, evaluate_detection, get_dataset, preset_for
from repro.baselines import IsolationForest
from repro.core import TFMAEConfig
from repro.metrics import anomaly_segments, debounce_alarms


def main() -> None:
    dataset = get_dataset("SMD", seed=0, scale=0.01).normalised()
    print("server fleet dataset:", dataset.summary())

    # TFMAE with the paper's SMD masking ratios (Fig. 6: r_T=5%, r_F=20%),
    # shrunk to CPU scale, with a ~2% alert budget.
    base = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                       batch_size=16, epochs=6, learning_rate=1e-3)
    config = preset_for("SMD", base=base, anomaly_ratio=2.0)
    detector = TFMAE(config)
    detector.fit(dataset.train, dataset.validation)

    alarms = detector.predict(dataset.test)
    incidents = anomaly_segments(debounce_alarms(alarms, merge_gap=20, min_length=2))
    metrics = evaluate_detection(alarms, dataset.test_labels)
    true_incidents = anomaly_segments(dataset.test_labels)

    caught = sum(
        1 for start, stop in true_incidents if alarms[start:stop].any()
    )
    genuine = [
        (start, stop) for start, stop in incidents
        if dataset.test_labels[start:stop].any()
    ]
    print(f"\nTFMAE: {metrics}")
    print(f"  {caught}/{len(true_incidents)} true events caught; "
          f"{len(genuine)}/{len(incidents)} raised incidents are genuine")
    for start, stop in genuine[:5]:
        covered = dataset.test_labels[start:stop].mean()
        print(f"  incident t=[{start}, {stop})  true-anomaly overlap={covered:.0%}")

    # Same alert budget for the classical baseline.
    forest = IsolationForest(anomaly_ratio=2.0, seed=0)
    forest.fit(dataset.train, dataset.validation)
    forest_metrics = evaluate_detection(forest.predict(dataset.test), dataset.test_labels)
    print(f"\nIsolationForest (same budget): {forest_metrics}")

    print("\nTFMAE exploits temporal + cross-channel structure that the "
          "pointwise forest cannot, at the same alert budget.")


if __name__ == "__main__":
    main()
