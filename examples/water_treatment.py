"""Critical-infrastructure attack detection: the SWaT scenario.

SWaT (Secure Water Treatment) records a plant under staged cyber-physical
attacks — long, multi-channel pattern anomalies (a pump forced on, a tank
drained slowly) rather than single-point glitches.  This is where the
paper's *amplitude-based frequency masking* earns its keep: attacks are
short-lived patterns with weak spectral support, exactly what the
frequency mask removes so the model reconstructs "what the plant should
be doing".

This example detects attacks with TFMAE and shows per-masking-strategy
impact: the paper's amplitude criterion vs. masking high frequencies vs.
no frequency masking (Table V's SWaT column in miniature).

Run:
    python examples/water_treatment.py
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, evaluate_detection, get_dataset
from repro.core import TFMAEConfig, preset_for
from repro.metrics import anomaly_segments


def run_variant(label: str, dataset, **overrides) -> None:
    base = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                       batch_size=16, epochs=6, learning_rate=1e-3)
    config = preset_for("SWaT", base=base, anomaly_ratio=15.0, **overrides)
    detector = TFMAE(config)
    detector.fit(dataset.train, dataset.validation)
    alarms = detector.predict(dataset.test)
    metrics = evaluate_detection(alarms, dataset.test_labels)

    attacks = anomaly_segments(dataset.test_labels)
    caught = sum(1 for start, stop in attacks if alarms[start:stop].any())
    print(f"  {label:<28} {metrics}   attacks caught: {caught}/{len(attacks)}")


def main() -> None:
    dataset = get_dataset("SWaT", seed=0, scale=0.01).normalised()
    print("water-treatment dataset:", dataset.summary())
    attacks = anomaly_segments(dataset.test_labels)
    lengths = [stop - start for start, stop in attacks]
    print(f"{len(attacks)} staged attacks, duration {min(lengths)}-{max(lengths)} steps\n")

    print("frequency-masking strategies (Table V, SWaT column):")
    run_variant("amplitude (paper)", dataset)
    run_variant("high-frequency (w/ HMF)", dataset, frequency_mask_strategy="high")
    run_variant("none (w/o MF)", dataset, frequency_mask_strategy="none")

    print("\nMasking *low-amplitude* bins removes short-lived attack patterns "
          "while preserving the plant's strong operating cycles; masking high "
          "frequencies throws away legitimate fast dynamics instead.  At this "
          "miniature scale the variants can tie — the full sweep lives in "
          "benchmarks/bench_table5_masking.py (Table V).")


if __name__ == "__main__":
    main()
