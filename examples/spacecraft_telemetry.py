"""Spacecraft telemetry with distribution shift: the SMAP scenario.

NASA's SMAP benchmark is the paper's canonical example of *time series
distribution shift* (Fig. 1 right, Fig. 9): the test-period telemetry
drifts away from the training regime, so a reconstruction model's anomaly
scores inflate on perfectly normal data and its validation-calibrated
threshold drowns operators in false alarms.

This example measures that effect directly on the drifting SMAP
surrogate: it trains TFMAE (contrastive criterion) and a frozen-backbone
reconstruction model (GPT4TS) with the same threshold protocol, then
reports

* the validation-vs-test score distribution gap (KS distance), and
* the false-alarm rate on *normal* test observations.

Run:
    python examples/spacecraft_telemetry.py
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, evaluate_detection, get_dataset
from repro.baselines import GPT4TS
from repro.core import TFMAEConfig, preset_for
from repro.metrics import ks_distance


def report(name: str, detector, dataset) -> None:
    normal = dataset.test_labels == 0
    val_scores = detector.score(dataset.validation)
    test_scores = detector.score(dataset.test)

    shift_gap = ks_distance(val_scores, test_scores[normal])
    alarms = detector.predict(dataset.test)
    false_alarm_rate = alarms[normal].mean()
    metrics = evaluate_detection(alarms, dataset.test_labels)

    print(f"\n{name}")
    print(f"  val->test score shift (KS on normal data): {shift_gap:.3f}")
    print(f"  false alarms on normal telemetry:          {false_alarm_rate:.2%}")
    print(f"  detection with point adjustment:           {metrics}")


def main() -> None:
    dataset = get_dataset("SMAP", seed=0, scale=0.01).normalised()
    print("SMAP telemetry:", dataset.summary())
    print("(test regime drifts away from training — the Fig. 9 setup)")

    base = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                       batch_size=16, epochs=6, learning_rate=1e-3)
    tfmae = TFMAE(preset_for("SMAP", base=base, anomaly_ratio=6.0))
    tfmae.fit(dataset.train, dataset.validation)
    report("TFMAE (contrastive criterion)", tfmae, dataset)

    recon = GPT4TS(window_size=100, epochs=6, batch_size=16,
                   anomaly_ratio=6.0, seed=0)
    recon.fit(dataset.train, dataset.validation)
    report("GPT4TS (reconstruction criterion)", recon, dataset)

    print("\nThe contrastive criterion compares two views of the SAME input, "
          "so regime drift moves both views together and the threshold "
          "transfers; reconstruction error grows on any unseen regime.")


if __name__ == "__main__":
    main()
