"""Fault-tolerant operation: checkpoint/resume and corrupted telemetry.

Production training jobs get preempted and production telemetry arrives
broken.  This example exercises both halves of ``repro.robustness``:

1. train with periodic checkpointing, "crash" the process mid-run, then
   resume from the last checkpoint and finish — landing on exactly the
   weights an uninterrupted run would produce;
2. stream a test window corrupted with NaN bursts and sensor spikes,
   first without a policy (the stream fails loudly) and then under a
   :class:`~repro.robustness.FaultPolicy` (impute + clamp + fallback),
   where every repair is recorded on the event's ``flags``.

Run:
    python examples/fault_tolerant_stream.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import TFMAE, FaultPolicy, StreamingDetector, get_dataset
from repro.baselines import IsolationForest
from repro.core import TFMAEConfig


def make_config(checkpoint_dir: str | None = None, **overrides) -> TFMAEConfig:
    base = dict(
        window_size=50, d_model=16, num_layers=1, num_heads=2,
        batch_size=8, epochs=4, learning_rate=1e-3, anomaly_ratio=2.0,
        checkpoint_dir=checkpoint_dir, checkpoint_every=1,
    )
    base.update(overrides)
    return TFMAEConfig(**base)


def main() -> None:
    dataset = get_dataset("SMD", seed=0, scale=0.005).normalised()
    print("dataset:", dataset.summary())

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # --- 1. checkpoint / crash / resume -------------------------------
        print("\n[1] training with checkpoints, interrupting after 2 epochs...")
        partial = TFMAE(make_config(checkpoint_dir, epochs=2))
        partial.fit(dataset.train, dataset.validation)

        print("    'crash' happened here; resuming the 4-epoch run from disk")
        detector = TFMAE(make_config(checkpoint_dir, epochs=4, resume=True))
        detector.fit(dataset.train, dataset.validation)
        log = detector.training_log
        print(f"    resumed={log.resumed}, "
              f"batches trained after resume={log.summary()['batches']}")

    # --- 2. corrupted telemetry ------------------------------------------
    test = dataset.test[:400].copy()
    rng = np.random.default_rng(0)
    nan_rows = rng.choice(len(test), size=8, replace=False)
    test[nan_rows, :3] = np.nan                    # NaN burst on 3 channels
    test[200] = 1e9                                 # a corrupt spike

    print("\n[2] streaming corrupted telemetry WITHOUT a policy...")
    strict = StreamingDetector(detector, context=100)
    try:
        strict.update_many(test)
    except ValueError as error:
        print(f"    failed loudly (as designed): {error}")

    print("\n[3] same stream WITH a FaultPolicy (impute + clamp + fallback)...")
    fallback = IsolationForest(anomaly_ratio=2.0, seed=0)
    fallback.fit(dataset.train, dataset.validation)
    policy = FaultPolicy(impute_nonfinite=True, clamp_sigma=20.0, fallback=fallback)
    stream = StreamingDetector(detector, context=100, policy=policy)
    events = stream.update_many(test)

    repairs: dict[str, int] = {}
    for event in events:
        for flag in event.flags:
            repairs[flag] = repairs.get(flag, 0) + 1
    alarms = sum(event.is_anomaly for event in events)
    print(f"    {len(events)} events, {alarms} alarms, repairs: {repairs}")
    for event in events:
        if event.degraded and "warmup" not in event.flags:
            print(f"    t={event.index:3d} flags={event.flags} "
                  f"score={event.score:.3f}")

    print("\nEvery malformed observation produced a flagged event instead of "
          "an exception; alerting stayed live throughout.")


if __name__ == "__main__":
    main()
