"""Serving quickstart: publish a fitted TFMAE and score it over HTTP.

Demonstrates the full ``repro.serve`` loop in one process:

1. fit a small detector and publish it to a :class:`ModelRegistry`
   (one versioned ``.npz`` per publish, hyperparameters included);
2. start an :class:`InferenceServer` on an ephemeral port — requests
   flow through the micro-batching scheduler, so concurrent clients
   share vectorized forward passes;
3. fire a burst of concurrent ``/score`` requests and check the served
   scores are bitwise-identical to calling ``detector.score`` directly;
4. read ``/metrics`` to see how many batches the burst coalesced into.

Run:
    python examples/serve_quickstart.py

For a long-running server use the CLI instead:
    python -m repro serve --registry ./model-registry --port 8080
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request

import numpy as np

from repro import TFMAE, TFMAEConfig, get_dataset
from repro.serve import InferenceServer, ModelRegistry


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Fit a small detector (same recipe as examples/quickstart.py,
    #    shrunk further so this example runs in a few seconds).
    dataset = get_dataset("NIPS-TS-Global", seed=0, scale=0.02).normalised()
    config = TFMAEConfig(window_size=50, d_model=16, num_layers=1, num_heads=2,
                         anomaly_ratio=2.5, epochs=3, batch_size=16,
                         learning_rate=1e-3, seed=0)
    detector = TFMAE(config)
    detector.fit(dataset.train, dataset.validation)
    print(f"fitted: threshold delta = {detector.threshold_:.4f}")

    with tempfile.TemporaryDirectory() as root:
        # 2. Publish to a registry and start the server on a free port.
        registry = ModelRegistry(root)
        version = registry.publish("tfmae", detector)
        print(f"published tfmae:{version} -> {root}")

        with InferenceServer(registry, port=0, max_batch_size=8,
                             max_delay=0.005, workers=2) as server:
            print(f"serving at {server.url}")

            # 3. A burst of concurrent requests through the micro-batcher.
            windows = [dataset.test[i : i + 50] for i in range(0, 64, 2)]
            served = [None] * len(windows)

            def client(index: int) -> None:
                served[index] = post_json(
                    server.url + "/score",
                    {"model": "tfmae", "window": windows[index].tolist()},
                )

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(windows))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            got = np.array([body["score"] for body in served])
            expected = np.array([detector.score(w)[-1] for w in windows])
            assert np.array_equal(got, expected), "served != sequential"
            flagged = sum(body["anomaly"] for body in served)
            print(f"scored {len(windows)} concurrent requests "
                  f"(bitwise equal to sequential), {flagged} flagged")

            # 4. How much did the scheduler coalesce?
            with urllib.request.urlopen(server.url + "/metrics", timeout=60) as r:
                snapshot = json.loads(r.read())
            batches = snapshot["histograms"]["serve_batch_size"]
            print(f"coalesced into {batches['count']} batches "
                  f"(mean size {batches['mean']:.1f}, max {batches['max']:.0f})")


if __name__ == "__main__":
    main()
