"""Quickstart: detect anomalies in a univariate series with TFMAE.

Runs the full pipeline on a small synthetic benchmark in under a minute
on CPU: build a dataset, train the temporal-frequency masked autoencoder,
calibrate the threshold on the validation split, and evaluate with the
paper's point-adjustment protocol.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, TFMAEConfig, evaluate_detection, get_dataset


def main() -> None:
    # 1. A small realisation of the NIPS-TS-Global benchmark: a periodic
    #    signal with 5% global point anomalies in the test split.
    dataset = get_dataset("NIPS-TS-Global", seed=0, scale=0.05).normalised()
    print("dataset:", dataset.summary())

    # 2. Configure TFMAE.  The paper's full-scale settings are the
    #    defaults (d_model=128, 3 layers, 1 epoch); this example shrinks
    #    the model and trains longer because the data is ~5% of full size.
    config = TFMAEConfig(
        window_size=100,
        d_model=32,
        num_layers=2,
        num_heads=4,
        temporal_mask_ratio=55.0,    # r^(T): mask the most volatile 55%
        frequency_mask_ratio=30.0,   # r^(F): mask the weakest 30% of bins
        anomaly_ratio=2.5,           # r: flag the top 2.5% as anomalies
        epochs=6,
        batch_size=16,
        learning_rate=1e-3,
    )

    # 3. Train (unsupervised) and calibrate the threshold on validation.
    detector = TFMAE(config)
    detector.fit(dataset.train, dataset.validation)
    print(f"trained: {detector.training_log.summary()}")
    print(f"threshold delta = {detector.threshold_:.4f}")

    # 4. Score and detect.
    scores = detector.score(dataset.test)
    predictions = detector.predict(dataset.test)
    labels = dataset.test_labels.astype(bool)
    print(f"mean score  normal={scores[~labels].mean():.3f}  "
          f"anomalous={scores[labels].mean():.3f}")

    # 5. Evaluate with point adjustment (the paper's protocol).
    metrics = evaluate_detection(predictions, dataset.test_labels)
    print("detection:", metrics)

    # 6. Inspect the top alarms.
    top = np.argsort(scores)[-5:][::-1]
    print("top-5 alarms (t, score, true label):")
    for t in top:
        print(f"  t={t:<6d} score={scores[t]:.3f} label={dataset.test_labels[t]}")


if __name__ == "__main__":
    main()
