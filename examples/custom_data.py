"""Bring your own data: TFMAE on an arbitrary CSV-like array.

The benchmark plumbing (registry, presets, point adjustment) is optional —
the detector itself consumes plain ``(time, features)`` numpy arrays.
This example builds a small "IoT sensor" series from scratch, injects a
few faults with the library's injection toolkit, and runs the minimal
fit -> calibrate -> predict loop, including model persistence.

Run:
    python examples/custom_data.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import TFMAE, TFMAEConfig
from repro.datasets import StandardScaler, inject_trend, random_segments
from repro.nn import load_model, save_model


def make_sensor_data(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three correlated sensors: temperature, vibration, power draw."""
    t = np.arange(6000, dtype=np.float64)
    temperature = 20 + 3 * np.sin(2 * np.pi * t / 480) + rng.normal(0, 0.2, t.size)
    vibration = 0.5 + 0.1 * np.sin(2 * np.pi * t / 60) + rng.normal(0, 0.02, t.size)
    power = 100 + 10 * np.sin(2 * np.pi * t / 480 + 0.7) + rng.normal(0, 1.0, t.size)
    data = np.stack([temperature, vibration, power], axis=1)

    train, live = data[:4000], data[4000:]

    # Inject two slow-drift faults into the live stream (bearing wear).
    segments = random_segments(live.shape[0], 2, 120, rng)
    faulty = live.copy()
    labels = np.zeros(live.shape[0], dtype=np.int64)
    for channel in (1, 2):  # vibration and power drift together
        faulty[:, channel], seg_labels = inject_trend(faulty[:, channel], segments, rng,
                                                      slope_scale=0.08)
        labels |= seg_labels
    return train, faulty, labels


def main() -> None:
    rng = np.random.default_rng(7)
    train_raw, live_raw, labels = make_sensor_data(rng)

    # Normalise with training statistics only.
    scaler = StandardScaler().fit(train_raw)
    train = scaler.transform(train_raw)
    live = scaler.transform(live_raw)
    validation, train = train[-800:], train[:-800]

    config = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                         temporal_mask_ratio=40.0, frequency_mask_ratio=30.0,
                         anomaly_ratio=4.0, epochs=6, batch_size=16,
                         learning_rate=1e-3)
    detector = TFMAE(config)
    detector.fit(train, validation)
    print(f"trained on {train.shape[0]} observations x {train.shape[1]} sensors; "
          f"threshold={detector.threshold_:.4f}")

    alarms = detector.predict(live)
    hits = int((alarms & labels).sum())
    print(f"live stream: {alarms.sum()} alarm points, "
          f"{hits}/{labels.sum()} faulty points flagged")

    # Persist and reload the trained model (numpy .npz checkpoint).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tfmae_sensors.npz"
        save_model(detector.model, path)
        fresh = TFMAE(config)
        fresh.fit(train[:200], validation)        # build, then overwrite weights
        load_model(fresh.model, path)
        fresh.threshold_ = detector.threshold_
        np.testing.assert_allclose(fresh.score(live[:300]), detector.score(live[:300]))
        print(f"checkpoint round-trip OK ({path.name}, "
              f"{detector.model.num_parameters()} parameters)")


if __name__ == "__main__":
    main()
