"""Forecasting with the masked autoencoder — the paper's future-work demo.

The conclusion of the TFMAE paper proposes extending the model to time
series prediction.  `repro.extensions.forecasting` realises it: the
temporal masked autoencoder with a *fixed* mask over the horizon — the
encoder digests the context, the decoder fills learnable mask tokens at
the future positions.

This example forecasts a server-load-like signal and compares against the
two standard naive floors (persistence and seasonal naive).

Run:
    python examples/forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro.extensions import (
    ForecastConfig,
    TFMAEForecaster,
    persistence_forecast,
    seasonal_naive_forecast,
)
from repro.viz import render_series


def make_load_signal(rng: np.random.Generator, length: int) -> np.ndarray:
    """Daily cycle + weekly modulation + noise, like request volume."""
    t = np.arange(length)
    daily = np.sin(2 * np.pi * t / 24.0)
    weekly = 0.4 * np.sin(2 * np.pi * t / 168.0)
    return (2.0 + daily + weekly + rng.normal(0, 0.08, length))[:, None]


def main() -> None:
    rng = np.random.default_rng(3)
    series = make_load_signal(rng, 3000)
    train, evaluation = series[:2400], series[2400:]

    config = ForecastConfig(context_length=96, horizon=24, d_model=32,
                            num_layers=2, num_heads=4, epochs=15, stride=4)
    forecaster = TFMAEForecaster(config).fit(train)
    print(f"trained forecaster: {len(forecaster.loss_history)} batches, "
          f"final loss {forecaster.loss_history[-1]:.5f}")

    # Rolling evaluation over the held-out tail.
    horizon, context_len = config.horizon, config.context_length
    errors = {"TFMAE-forecast": [], "persistence": [], "seasonal-naive": []}
    for start in range(0, evaluation.shape[0] - context_len - horizon, horizon):
        context = evaluation[start : start + context_len]
        target = evaluation[start + context_len : start + context_len + horizon]
        errors["TFMAE-forecast"].append(np.mean((forecaster.predict(context) - target) ** 2))
        errors["persistence"].append(np.mean((persistence_forecast(context, horizon) - target) ** 2))
        errors["seasonal-naive"].append(
            np.mean((seasonal_naive_forecast(context, horizon, period=24) - target) ** 2)
        )

    print("\nrolling 24-step-ahead MSE:")
    for name, values in errors.items():
        print(f"  {name:<15} {np.mean(values):.5f}")

    # Show one forecast next to the truth.
    context = evaluation[:context_len]
    target = evaluation[context_len : context_len + horizon]
    forecast = forecaster.predict(context)
    print("\ncontext + truth (last 48 steps shown):")
    print(render_series(np.concatenate([context[-24:, 0], target[:, 0]]), height=6))
    print("context + forecast:")
    print(render_series(np.concatenate([context[-24:, 0], forecast[:, 0]]), height=6))


if __name__ == "__main__":
    main()
